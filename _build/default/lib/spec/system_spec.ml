type t = {
  n : int;
  source : Event.proc;
  drift : Drift.t array;
  transit : (int, Transit.t) Hashtbl.t; (* key: u * n + v *)
  neighbors : Event.proc list array;
  n_links : int;
}

let key t u v = (u * t.n) + v

let make ~n ~source ~drift ~links =
  if n <= 0 then invalid_arg "System_spec.make: n must be positive";
  if source < 0 || source >= n then invalid_arg "System_spec.make: bad source";
  let drift_arr =
    Array.init n (fun p -> if p = source then Drift.perfect else drift p)
  in
  let t =
    {
      n;
      source;
      drift = drift_arr;
      transit = Hashtbl.create (2 * List.length links);
      neighbors = Array.make n [];
      n_links = List.length links;
    }
  in
  List.iter
    (fun (u, v, tr) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "System_spec.make: link endpoint out of range";
      if u = v then invalid_arg "System_spec.make: self-loop";
      if Hashtbl.mem t.transit (key t u v) then
        invalid_arg "System_spec.make: duplicate link";
      Hashtbl.replace t.transit (key t u v) tr;
      Hashtbl.replace t.transit (key t v u) tr;
      t.neighbors.(u) <- v :: t.neighbors.(u);
      t.neighbors.(v) <- u :: t.neighbors.(v))
    links;
  Array.iteri
    (fun p ns -> t.neighbors.(p) <- List.sort compare ns)
    t.neighbors;
  t

let uniform ~n ~source ~drift ~transit ~links =
  make ~n ~source
    ~drift:(fun _ -> drift)
    ~links:(List.map (fun (u, v) -> (u, v, transit)) links)

let n t = t.n
let source t = t.source
let drift t p = t.drift.(p)
let transit t u v = Hashtbl.find_opt t.transit (key t u v)

let transit_exn t u v =
  match transit t u v with
  | Some tr -> tr
  | None ->
    invalid_arg (Printf.sprintf "System_spec.transit_exn: no link %d-%d" u v)

let neighbors t p = t.neighbors.(p)
let degree t p = List.length t.neighbors.(p)

let max_degree t =
  let d = ref 0 in
  for p = 0 to t.n - 1 do
    d := max !d (degree t p)
  done;
  !d

let n_links t = t.n_links

(* BFS from every node; n is small in all our scenarios. *)
let diameter t =
  let worst = ref 0 in
  let dist = Array.make t.n (-1) in
  for s = 0 to t.n - 1 do
    Array.fill dist 0 t.n (-1);
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.push s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
        t.neighbors.(u)
    done;
    Array.iter
      (fun d -> if d < 0 then worst := max_int else worst := max !worst d)
      dist
  done;
  !worst

let is_connected t = diameter t < max_int

let pp fmt t =
  Format.fprintf fmt "@[<v>system: %d processors, source p%d, %d links@]" t.n
    t.source t.n_links
