(** Message transit-time bounds for a link.

    For a message with send event [p] and receive event [q], any physical
    system guarantees [RT(q) − RT(p) ∈ [0, ⊤]]; many systems know tighter
    bounds.  [hi] may be infinite (completely asynchronous link). *)

type t = private { lo : Q.t; hi : Ext.t }

val make : lo:Q.t -> hi:Ext.t -> t
(** @raise Invalid_argument unless [0 <= lo <= hi]. *)

val of_q : Q.t -> Q.t -> t
val asynchronous : t
(** [[0, ⊤]]: delivery takes arbitrary non-negative time. *)

val exact : Q.t -> t
(** A link with a known fixed delay. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
