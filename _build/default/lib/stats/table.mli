(** Aligned plain-text tables for the benchmark harness output. *)

val print : header:string list -> string list list -> unit
(** Render to stdout with column alignment and a rule under the header. *)

val render : header:string list -> string list list -> string

val fq : float -> string
(** Compact float formatting for table cells ("1.234e-05", "12.3",
    "inf"). *)
