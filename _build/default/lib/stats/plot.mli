(** ASCII line plots for the benchmark harness (the paper-figure
    equivalent of the experiment tables).

    Renders one or more named series on a shared log-or-linear y axis into
    a fixed-size character grid.  Intended for interval-width-over-time
    convergence figures. *)

type series = { label : string; points : (float * float) list }
(** [(x, y)] points; non-finite y values are skipped. *)

val render :
  ?width:int ->
  ?height:int ->
  ?logy:bool ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** @raise Invalid_argument when no series has a finite point. *)
