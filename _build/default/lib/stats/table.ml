let fq x =
  if Float.is_nan x then "nan"
  else if Float.is_integer x && Float.abs x < 1e9 then
    Printf.sprintf "%.0f" x
  else if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else begin
    let ax = Float.abs x in
    if ax >= 1e5 || ax < 1e-3 then Printf.sprintf "%.3e" x
    else Printf.sprintf "%.4g" x
  end

let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let buf = Buffer.create 256 in
  let render_row row =
    List.iteri
      (fun c w ->
        let cell = Option.value ~default:"" (List.nth_opt row c) in
        Buffer.add_string buf (Printf.sprintf "%-*s" w cell);
        if c < cols - 1 then Buffer.add_string buf "  ")
      widths;
    Buffer.add_char buf '\n'
  in
  render_row header;
  List.iter
    (fun w -> Buffer.add_string buf (String.make w '-' ^ "  "))
    widths;
  Buffer.truncate buf (Buffer.length buf - 2);
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)
