lib/stats/plot.ml: Array Buffer Float List Printf String
