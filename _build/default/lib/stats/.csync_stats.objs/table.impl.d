lib/stats/table.ml: Buffer Float List Option Printf String
