lib/stats/plot.mli:
