lib/stats/table.mli:
