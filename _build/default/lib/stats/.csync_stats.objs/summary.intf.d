lib/stats/summary.mli:
