lib/stats/summary.ml: Array Float List Stdlib
