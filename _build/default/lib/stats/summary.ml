type t = {
  mutable samples : float list;
  mutable n : int;
  mutable n_inf : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable mn : float;
  mutable mx : float;
  mutable sorted : float array option; (* cache for percentiles *)
}

let create () =
  {
    samples = [];
    n = 0;
    n_inf = 0;
    sum = 0.;
    sum_sq = 0.;
    mn = infinity;
    mx = neg_infinity;
    sorted = None;
  }

let add t x =
  if Float.is_finite x then begin
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    t.sorted <- None
  end
  else t.n_inf <- t.n_inf + 1

let n t = t.n
let n_infinite t = t.n_inf
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else begin
    let m = mean t in
    sqrt (Float.max 0. ((t.sum_sq /. float_of_int t.n) -. (m *. m)))
  end

let min t = t.mn
let max t = t.mx

let percentile t p =
  if t.n = 0 then invalid_arg "Summary.percentile: no finite samples";
  if p < 0. || p > 1. then invalid_arg "Summary.percentile: p out of range";
  let sorted =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a
  in
  let idx = int_of_float (ceil (p *. float_of_int t.n)) - 1 in
  sorted.(Stdlib.max 0 (Stdlib.min (t.n - 1) idx))

let of_list l =
  let t = create () in
  List.iter (add t) l;
  t
