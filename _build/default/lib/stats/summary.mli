(** Descriptive statistics over float samples (benchmark reporting). *)

type t

val create : unit -> t
val add : t -> float -> unit
(** Non-finite samples are counted separately and excluded from moments. *)

val n : t -> int
(** Finite samples. *)

val n_infinite : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t 0.5] is the median (nearest-rank over finite samples).
    @raise Invalid_argument when no finite samples or p outside [0,1]. *)

val of_list : float list -> t
