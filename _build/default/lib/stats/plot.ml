type series = { label : string; points : (float * float) list }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let finite_points s =
  List.filter (fun (x, y) -> Float.is_finite x && Float.is_finite y) s.points

let render ?(width = 64) ?(height = 16) ?(logy = false) ~x_label ~y_label
    series_list =
  let all =
    List.concat_map finite_points series_list
    |> List.map (fun (x, y) -> (x, if logy then log10 (Float.max y 1e-300) else y))
  in
  if all = [] then invalid_arg "Plot.render: no finite points";
  let xs = List.map fst all and ys = List.map snd all in
  let fmin = List.fold_left Float.min infinity in
  let fmax = List.fold_left Float.max neg_infinity in
  let x0 = fmin xs and x1 = fmax xs in
  let y0 = fmin ys and y1 = fmax ys in
  let xspan = if x1 > x0 then x1 -. x0 else 1. in
  let yspan = if y1 > y0 then y1 -. y0 else 1. in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si s ->
      let marker = markers.(si mod Array.length markers) in
      List.iter
        (fun (x, y) ->
          let y = if logy then log10 (Float.max y 1e-300) else y in
          let cx =
            int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1))
          in
          let cy =
            height - 1
            - int_of_float ((y -. y0) /. yspan *. float_of_int (height - 1))
          in
          if cx >= 0 && cx < width && cy >= 0 && cy < height then
            grid.(cy).(cx) <- marker)
        (finite_points s))
    series_list;
  let buf = Buffer.create ((width + 16) * (height + 4)) in
  let y_value_at row =
    let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
    let v = y0 +. (frac *. yspan) in
    if logy then 10. ** v else v
  in
  Buffer.add_string buf (y_label ^ (if logy then " (log scale)" else "") ^ "\n");
  Array.iteri
    (fun row line ->
      let tick =
        if row = 0 || row = height - 1 || row = height / 2 then
          Printf.sprintf "%9.2e |" (y_value_at row)
        else String.make 9 ' ' ^ " |"
      in
      Buffer.add_string buf tick;
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 10 ' ' ^ "+" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%s%-8.3g%*s%8.3g  (%s)\n" (String.make 11 ' ') x0
       (width - 12) "" x1 x_label);
  let legend =
    List.mapi
      (fun si s ->
        Printf.sprintf "%c %s" markers.(si mod Array.length markers) s.label)
      series_list
  in
  Buffer.add_string buf ("  " ^ String.concat "    " legend ^ "\n");
  Buffer.contents buf
