
exception Negative_cycle

let relax_count = ref 0
let relaxations () = !relax_count

(* Queue-based Bellman-Ford (SPFA) with a relaxation-count cutoff for
   negative-cycle detection.  Exact rational weights. *)
let sssp g src =
  let n = Digraph.n g in
  let dist = Array.make n Ext.Inf in
  let times_relaxed = Array.make n 0 in
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  dist.(src) <- Ext.zero;
  Queue.push src queue;
  in_queue.(src) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    let du = dist.(u) in
    List.iter
      (fun (v, w) ->
        incr relax_count;
        let cand = Ext.add du (Ext.Fin w) in
        if Ext.lt cand dist.(v) then begin
          dist.(v) <- cand;
          times_relaxed.(v) <- times_relaxed.(v) + 1;
          if times_relaxed.(v) > n then raise Negative_cycle;
          if not in_queue.(v) then begin
            Queue.push v queue;
            in_queue.(v) <- true
          end
        end)
      (Digraph.succ g u)
  done;
  dist
