
type t = {
  size : int;
  adj : (int, Q.t) Hashtbl.t array; (* adj.(u) : dst -> min weight *)
}

let create size = { size; adj = Array.init size (fun _ -> Hashtbl.create 4) }
let n g = g.size

let add_edge g u v w =
  if u < 0 || u >= g.size || v < 0 || v >= g.size then
    invalid_arg "Digraph.add_edge: node out of range";
  match Hashtbl.find_opt g.adj.(u) v with
  | Some w0 when Q.(w0 <= w) -> ()
  | _ -> Hashtbl.replace g.adj.(u) v w

let succ g u = Hashtbl.fold (fun v w acc -> (v, w) :: acc) g.adj.(u) []

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    Hashtbl.iter (fun v w -> acc := (u, v, w) :: !acc) g.adj.(u)
  done;
  !acc

let edge_count g =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 g.adj

let reverse g =
  let r = create g.size in
  for u = 0 to g.size - 1 do
    Hashtbl.iter (fun v w -> add_edge r v u w) g.adj.(u)
  done;
  r

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph (%d nodes):" g.size;
  List.iter
    (fun (u, v, w) -> Format.fprintf fmt "@,  %d -> %d  [%a]" u v Q.pp w)
    (edges g);
  Format.fprintf fmt "@]"
