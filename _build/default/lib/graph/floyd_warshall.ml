
exception Negative_cycle

let run d =
  let n = Array.length d in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if Ext.is_fin dik then
        for j = 0 to n - 1 do
          let cand = Ext.add dik d.(k).(j) in
          if Ext.lt cand d.(i).(j) then d.(i).(j) <- cand
        done
    done
  done;
  for i = 0 to n - 1 do
    if Ext.lt d.(i).(i) Ext.zero then raise Negative_cycle
  done;
  d

let of_matrix m =
  let n = Array.length m in
  let d = Array.init n (fun i -> Array.copy m.(i)) in
  for i = 0 to n - 1 do
    if Ext.lt Ext.zero d.(i).(i) then d.(i).(i) <- Ext.zero
  done;
  run d

let apsp g =
  let n = Digraph.n g in
  let d = Array.make_matrix n n Ext.Inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- Ext.zero
  done;
  List.iter
    (fun (u, v, w) ->
      let w = Ext.Fin w in
      if Ext.lt w d.(u).(v) then d.(u).(v) <- w)
    (Digraph.edges g);
  run d
