(** Weighted directed graphs over dense integer node ids.

    Used for synchronization graphs (Definition 2.1 of the paper), where
    nodes are events and edge weights are
    [w(p,q) = B(p,q) - virt_del(p,q)].  Weights may be negative; parallel
    edges are collapsed to the minimum weight (only distances matter). *)

type t

val create : int -> t
(** [create n] is an edgeless graph on nodes [0 .. n-1]. *)

val n : t -> int

val add_edge : t -> int -> int -> Q.t -> unit
(** [add_edge g u v w]: directed edge [u -> v] of weight [w]; keeps the
    minimum weight if the edge already exists. *)

val succ : t -> int -> (int * Q.t) list
(** Outgoing edges of a node as [(dst, weight)]. *)

val edges : t -> (int * int * Q.t) list
val edge_count : t -> int
val reverse : t -> t
val pp : Format.formatter -> t -> unit
