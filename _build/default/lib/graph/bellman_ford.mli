(** Single-source shortest paths with negative edge weights.

    This is the workhorse of the {e reference} (inefficient, general)
    optimal synchronization algorithm of Patt-Shamir and Rajsbaum: the
    paper's Section 2.3 computes distances in the synchronization graph
    with Bellman-Ford. *)

exception Negative_cycle
(** Raised when the graph has a negative-weight cycle, i.e. the view and
    its bounds mapping admit no execution (an inconsistent system
    specification). *)

val sssp : Digraph.t -> int -> Ext.t array
(** [sssp g src] is the distance array from [src]; unreachable nodes map
    to [Inf].  @raise Negative_cycle as described above. *)

val relaxations : unit -> int
(** Number of edge relaxations performed since program start (a
    machine-independent cost counter for the benchmark harness). *)
