lib/graph/bellman_ford.ml: Array Digraph Ext List Queue
