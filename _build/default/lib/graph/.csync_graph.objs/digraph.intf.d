lib/graph/digraph.mli: Format Q
