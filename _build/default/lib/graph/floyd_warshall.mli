(** All-pairs shortest paths on a dense distance matrix.

    Used as a ground-truth oracle in tests of the incremental APSP update
    (Lemma 3.5 / Ausiello et al.), and for one-shot distance matrices over
    small views. *)

exception Negative_cycle

val apsp : Digraph.t -> Ext.t array array
(** [apsp g] is the full distance matrix of [g].
    @raise Negative_cycle when some diagonal entry becomes negative. *)

val of_matrix : Ext.t array array -> Ext.t array array
(** Run Floyd-Warshall over an adjacency matrix (diagonal forced to 0);
    the input is not modified. *)
