(** The general optimal external synchronization algorithm of Section 2.3.

    "Send, in every message, the complete local view from the send point
    ... compute the synchronization graph ... set
    [ext_L = LT(p) − d(sp, p)] and [ext_U = LT(p) + d(p, sp)]."

    This algorithm is optimal but impractical (its state grows with the
    number of events in the execution).  We use it as the ground-truth
    oracle: the efficient algorithm of Section 3 must produce {e exactly}
    these bounds. *)

val source_point : System_spec.t -> View.t -> Event.id option
(** Any point at the source processor; all source points are at mutual
    distance 0, so the choice does not affect the bounds. *)

val estimate : System_spec.t -> View.t -> at:Event.id -> Interval.t
(** Optimal [[ext_L, ext_U]] for the source time at the occurrence of the
    event [at], per Theorem 2.1.
    @raise Bellman_ford.Negative_cycle on inconsistent specifications. *)

val estimates_at_proc :
  System_spec.t -> View.t -> Event.proc -> (Event.id * Interval.t) list
(** Estimates for every event of one processor (one graph build, two
    shortest-path runs per event — still the naive algorithm, just
    batched). *)

val all_pairs : System_spec.t -> View.t -> (Event.id -> Event.id -> Ext.t)
(** Exact distance oracle over the whole view's synchronization graph;
    used to validate the AGDP structure (Lemma 3.4). *)
