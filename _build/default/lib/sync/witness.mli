(** Achievability witnesses for Theorem 2.1.

    The Clock Synchronization Theorem is tight: for events [p, q] there
    exist executions [α₀, α₁] with the same view in which
    [RT(p) − RT(q)] attains each end of the interval.  This module
    constructs such executions as explicit real-time assignments (shortest
    path potentials), and checks feasibility of arbitrary assignments
    against a bounds mapping.  Tests use it to demonstrate that the
    algorithm's bounds cannot be improved. *)

type assignment = Event.id -> Q.t
(** A real-time labeling of the events of a view. *)

val feasible : System_spec.t -> View.t -> assignment -> bool
(** Whether the assignment satisfies every bound of the view's bounds
    mapping (drift and transit constraints), i.e. whether it is a possible
    execution with this view. *)

val violations :
  System_spec.t -> View.t -> assignment -> (Event.id * Event.id * string) list
(** Diagnostic version of {!feasible}: the list of violated constraints. *)

val extremal :
  System_spec.t -> View.t -> anchor:Event.id -> [ `Earliest | `Latest ] ->
  assignment
(** [extremal spec view ~anchor `Latest] is a feasible execution with
    [RT(anchor) = LT(anchor)] in which every event occurs as late as the
    bounds allow relative to [anchor]:
    [RT(x) = LT(x) + d(x, anchor)] (so that
    [RT(x) − RT(anchor) = virt_del(x, anchor) + d(x, anchor)], the upper
    end of Theorem 2.1's interval).  [`Earliest] is the symmetric
    construction [RT(x) = LT(x) − d(anchor, x)].  Querying an event at
    infinite distance from/to the anchor raises [Not_found]. *)
