type assignment = Event.id -> Q.t

(* Enumerate every constraint [RT(src) − RT(dst) <= bound] of the view's
   bounds mapping. *)
let constraints spec view =
  let acc = ref [] in
  View.iter view (fun e ->
      (match Event.prev_id e with
      | None -> ()
      | Some pid ->
        let prev = View.find_exn view pid in
        let d = System_spec.drift spec (Event.loc e) in
        let lo, hi = Drift.rt_bounds d (Q.sub e.lt prev.Event.lt) in
        (* RT(e) − RT(prev) ∈ [lo, hi] *)
        acc := (e.id, pid, hi, "drift upper") :: !acc;
        acc := (pid, e.id, Q.neg lo, "drift lower") :: !acc);
      match e.kind with
      | Event.Recv { send; _ } ->
        let send_ev = View.find_exn view send in
        let tr =
          System_spec.transit_exn spec (Event.loc send_ev) (Event.loc e)
        in
        (* RT(recv) − RT(send) ∈ [lo, hi] *)
        (match tr.Transit.hi with
        | Ext.Fin hi -> acc := (e.id, send, hi, "transit upper") :: !acc
        | Ext.Inf -> ());
        acc := (send, e.id, Q.neg tr.Transit.lo, "transit lower") :: !acc
      | Event.Init | Event.Internal | Event.Send _ -> ());
  !acc

let violations spec view rt =
  List.filter_map
    (fun (src, dst, bound, what) ->
      if Q.((rt src - rt dst) <= bound) then None else Some (src, dst, what))
    (constraints spec view)

let feasible spec view rt = violations spec view rt = []

let extremal spec view ~anchor direction =
  let sg = Sync_graph.build spec view in
  let d =
    match direction with
    | `Latest -> Sync_graph.dist_to sg anchor (* d(x, anchor) *)
    | `Earliest -> Sync_graph.dist_from sg anchor (* d(anchor, x) *)
  in
  fun id ->
    let e = View.find_exn view id in
    match direction, d id with
    | _, Ext.Inf -> raise Not_found
    | `Latest, Ext.Fin dist -> Q.add e.lt dist
    | `Earliest, Ext.Fin dist -> Q.sub e.lt dist
