lib/sync/sync_graph.mli: Digraph Event Ext System_spec View
