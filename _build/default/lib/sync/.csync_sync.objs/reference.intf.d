lib/sync/reference.mli: Event Ext Interval System_spec View
