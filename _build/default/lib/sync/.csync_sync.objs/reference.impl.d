lib/sync/reference.ml: Array Event Ext Floyd_warshall Interval List Q Sync_graph System_spec View
