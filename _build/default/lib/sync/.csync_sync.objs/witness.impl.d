lib/sync/witness.ml: Drift Event Ext List Q Sync_graph System_spec Transit View
