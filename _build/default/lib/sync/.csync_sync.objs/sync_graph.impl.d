lib/sync/sync_graph.ml: Array Bellman_ford Digraph Edges Event Format List System_spec View
