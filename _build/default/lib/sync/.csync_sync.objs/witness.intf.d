lib/sync/witness.mli: Event Q System_spec View
