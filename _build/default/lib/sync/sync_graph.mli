(** The synchronization graph of a whole view (Definition 2.1).

    Materializes the weighted digraph whose nodes are the events of a view
    and whose edges come from the bounds mapping; indexes event ids to
    dense node ids so the generic shortest-path code applies. *)

type t

val build : System_spec.t -> View.t -> t
val view : t -> View.t
val spec : t -> System_spec.t
val graph : t -> Digraph.t
val node_of : t -> Event.id -> int
val event_of : t -> int -> Event.t
val size : t -> int

val dist_from : t -> Event.id -> (Event.id -> Ext.t)
(** Single-source distances out of an event.
    @raise Bellman_ford.Negative_cycle on inconsistent specifications. *)

val dist_to : t -> Event.id -> (Event.id -> Ext.t)
(** Distances {e into} an event (single-sink, via the reversed graph). *)

val dist : t -> Event.id -> Event.id -> Ext.t
(** One-off pairwise distance (runs a fresh single-source computation). *)
