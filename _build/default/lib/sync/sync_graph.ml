type t = {
  spec : System_spec.t;
  view : View.t;
  graph : Digraph.t;
  index : int Event.Id_tbl.t;
  events : Event.t array;
}

let build spec view =
  let n = View.size view in
  let index = Event.Id_tbl.create n in
  let events = Array.make n None in
  let next = ref 0 in
  View.iter view (fun e ->
      Event.Id_tbl.replace index e.id !next;
      events.(!next) <- Some e;
      incr next);
  let events =
    Array.map
      (function Some e -> e | None -> invalid_arg "Sync_graph.build")
      events
  in
  let graph = Digraph.create n in
  List.iter
    (fun { Edges.src; dst; w } ->
      Digraph.add_edge graph
        (Event.Id_tbl.find index src)
        (Event.Id_tbl.find index dst)
        w)
    (Edges.of_view spec view);
  { spec; view; graph; index; events }

let view t = t.view
let spec t = t.spec
let graph t = t.graph

let node_of t id =
  match Event.Id_tbl.find_opt t.index id with
  | Some i -> i
  | None ->
    invalid_arg (Format.asprintf "Sync_graph.node_of: %a" Event.pp_id id)

let event_of t i = t.events.(i)
let size t = Array.length t.events

let dist_from t src =
  let d = Bellman_ford.sssp t.graph (node_of t src) in
  fun id -> d.(node_of t id)

let dist_to t dst =
  let d = Bellman_ford.sssp (Digraph.reverse t.graph) (node_of t dst) in
  fun id -> d.(node_of t id)

let dist t src dst = dist_from t src dst
