let source_point spec view =
  match View.events_of view (System_spec.source spec) with
  | [] -> None
  | e :: _ -> Some e.Event.id

(* ext_L = LT(p) − d(sp, p); ext_U = LT(p) + d(p, sp). *)
let interval_of_dists ~(lt : Q.t) ~(d_sp_p : Ext.t) ~(d_p_sp : Ext.t) =
  let lo =
    match d_sp_p with
    | Ext.Inf -> Interval.Neg_inf
    | Ext.Fin d -> Interval.B (Q.sub lt d)
  in
  let hi =
    match d_p_sp with
    | Ext.Inf -> Interval.Pos_inf
    | Ext.Fin d -> Interval.B (Q.add lt d)
  in
  Interval.make lo hi

let estimate spec view ~at =
  match source_point spec view with
  | None -> Interval.full
  | Some sp ->
    let sg = Sync_graph.build spec view in
    let from_sp = Sync_graph.dist_from sg sp in
    let to_sp = Sync_graph.dist_to sg sp in
    let e = View.find_exn view at in
    interval_of_dists ~lt:e.Event.lt ~d_sp_p:(from_sp at) ~d_p_sp:(to_sp at)

let estimates_at_proc spec view p =
  match source_point spec view with
  | None ->
    List.map (fun (e : Event.t) -> (e.id, Interval.full)) (View.events_of view p)
  | Some sp ->
    let sg = Sync_graph.build spec view in
    let from_sp = Sync_graph.dist_from sg sp in
    let to_sp = Sync_graph.dist_to sg sp in
    List.map
      (fun (e : Event.t) ->
        ( e.id,
          interval_of_dists ~lt:e.lt ~d_sp_p:(from_sp e.id)
            ~d_p_sp:(to_sp e.id) ))
      (View.events_of view p)

let all_pairs spec view =
  let sg = Sync_graph.build spec view in
  let d = Floyd_warshall.apsp (Sync_graph.graph sg) in
  fun src dst -> d.(Sync_graph.node_of sg src).(Sync_graph.node_of sg dst)
