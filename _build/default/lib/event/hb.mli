(** Lamport's happened-before relation over a view.

    [p → q] holds iff there is a (possibly empty) directed path from [p] to
    [q] in the execution graph, whose edges are (i) send → receive of the
    same message and (ii) consecutive events at the same processor.  Used
    by tests and by the complexity instrumentation ("live messages" are
    sends whose delivery did not happen before the observation point). *)

val happened_before : View.t -> Event.id -> Event.id -> bool
(** Reflexive: [happened_before v p p = true]. *)

val causal_past : View.t -> Event.id -> Event.t list
(** All events [q] with [q → p], in a topological order. *)

val concurrent : View.t -> Event.id -> Event.id -> bool
(** Neither [p → q] nor [q → p]. *)
