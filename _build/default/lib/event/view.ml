
type t = {
  n_procs : int;
  tbl : Event.t Event.Id_tbl.t;
  by_proc : Event.t list ref array; (* newest first *)
  last : Event.t option array;
  recv_of : (int, Event.id) Hashtbl.t; (* msg id -> receive event id *)
  mutable order : Event.t list; (* insertion order, newest first *)
  mutable size : int;
}

let create ~n_procs =
  {
    n_procs;
    tbl = Event.Id_tbl.create 64;
    by_proc = Array.init n_procs (fun _ -> ref []);
    last = Array.make n_procs None;
    recv_of = Hashtbl.create 16;
    order = [];
    size = 0;
  }

let n_procs t = t.n_procs
let mem t id = Event.Id_tbl.mem t.tbl id
let find t id = Event.Id_tbl.find_opt t.tbl id

let find_exn t id =
  match find t id with
  | Some e -> e
  | None ->
    invalid_arg
      (Format.asprintf "View.find_exn: %a not in view" Event.pp_id id)

let last_of t p = t.last.(p)
let events_of t p = List.rev !(t.by_proc.(p))
let size t = t.size
let iter t f = List.iter f (List.rev t.order)
let fold t ~init ~f = List.fold_left f init (List.rev t.order)
let to_list t = List.rev t.order
let recv_of_msg t msg = Hashtbl.find_opt t.recv_of msg

let add t (e : Event.t) =
  let p = Event.loc e in
  if p < 0 || p >= t.n_procs then invalid_arg "View.add: processor out of range";
  if mem t e.id then
    invalid_arg (Format.asprintf "View.add: duplicate %a" Event.pp_id e.id);
  (match t.last.(p) with
  | None ->
    if e.id.seq <> 0 then
      invalid_arg
        (Format.asprintf "View.add: missing predecessor of %a" Event.pp_id e.id);
    if e.kind <> Event.Init then
      invalid_arg "View.add: first event of a processor must be Init"
  | Some prev ->
    if e.id.seq <> prev.id.seq + 1 then
      invalid_arg
        (Format.asprintf "View.add: out-of-order insert of %a" Event.pp_id e.id);
    if Q.(e.lt < prev.lt) then
      invalid_arg
        (Format.asprintf "View.add: local time regression at %a" Event.pp_id e.id));
  (match e.kind with
  | Event.Recv { send; _ } ->
    if not (mem t send) then
      invalid_arg
        (Format.asprintf "View.add: receive %a before its send" Event.pp_id e.id)
  | Event.Init | Event.Internal | Event.Send _ -> ());
  Event.Id_tbl.add t.tbl e.id e;
  t.by_proc.(p) := e :: !(t.by_proc.(p));
  t.last.(p) <- Some e;
  (match e.kind with
  | Event.Recv { msg; _ } -> Hashtbl.replace t.recv_of msg e.id
  | _ -> ());
  t.order <- e :: t.order;
  t.size <- t.size + 1

let is_live t id =
  let e = find_exn t id in
  let is_last =
    match t.last.(Event.loc e) with
    | Some last -> Event.id_equal last.id id
    | None -> false
  in
  let pending_send =
    match e.kind with
    | Event.Send { msg; _ } -> recv_of_msg t msg = None
    | _ -> false
  in
  is_last || pending_send

let live_points t =
  fold t ~init:[] ~f:(fun acc e -> if is_live t e.id then e :: acc else acc)
  |> List.rev

let deps_of (e : Event.t) =
  let prev = match Event.prev_id e with None -> [] | Some p -> [ p ] in
  match e.kind with
  | Event.Recv { send; _ } -> send :: prev
  | Event.Init | Event.Internal | Event.Send _ -> prev

(* Repeated-sweep topological sort over the batch, treating events already
   in the view as satisfied dependencies.  Batches are small (bounded by
   the history-buffer size, Lemma 3.3), so the quadratic worst case is
   acceptable and keeps the code obviously correct. *)
let topo_sort_batch t batch =
  let dedup = Event.Id_tbl.create (List.length batch) in
  let batch =
    List.filter
      (fun (e : Event.t) ->
        if Event.Id_tbl.mem dedup e.id then false
        else begin
          Event.Id_tbl.replace dedup e.id ();
          true
        end)
      batch
  in
  (* A dependency that is neither known nor in the batch is a protocol
     violation: the resulting view would not be causally closed. *)
  List.iter
    (fun (e : Event.t) ->
      List.iter
        (fun dep ->
          if not (mem t dep) && not (Event.Id_tbl.mem dedup dep) then
            invalid_arg
              (Format.asprintf "View.topo_sort_batch: %a depends on unknown %a"
                 Event.pp_id e.id Event.pp_id dep))
        (deps_of e))
    batch;
  let emitted = Event.Id_tbl.create (List.length batch) in
  let satisfied dep = mem t dep || Event.Id_tbl.mem emitted dep in
  let result = ref [] in
  let rec loop remaining =
    if remaining <> [] then begin
      let ready, blocked =
        List.partition
          (fun e -> List.for_all satisfied (deps_of e))
          remaining
      in
      if ready = [] then
        invalid_arg "View.topo_sort_batch: dependency cycle in batch";
      List.iter
        (fun (e : Event.t) ->
          Event.Id_tbl.replace emitted e.id ();
          result := e :: !result)
        ready;
      loop blocked
    end
  in
  loop batch;
  List.rev !result

let merge_batch t batch =
  let fresh = List.filter (fun (e : Event.t) -> not (mem t e.id)) batch in
  let sorted = topo_sort_batch t fresh in
  List.iter (add t) sorted;
  sorted
