
type proc = int
type id = { proc : proc; seq : int }

type kind =
  | Init
  | Internal
  | Send of { msg : int; dst : proc }
  | Recv of { msg : int; src : proc; send : id }

type t = { id : id; lt : Q.t; kind : kind }

let id_compare a b =
  let c = compare a.proc b.proc in
  if c <> 0 then c else compare a.seq b.seq

let id_equal a b = a.proc = b.proc && a.seq = b.seq
let id_hash a = (a.proc * 1_000_003) + a.seq
let pp_id fmt a = Format.fprintf fmt "p%d#%d" a.proc a.seq
let loc e = e.id.proc
let prev_id e = if e.id.seq = 0 then None else Some { e.id with seq = e.id.seq - 1 }
let is_send e = match e.kind with Send _ -> true | _ -> false
let is_recv e = match e.kind with Recv _ -> true | _ -> false
let sent_msg e = match e.kind with Send { msg; _ } -> Some msg | _ -> None

let pp fmt e =
  let kind_str =
    match e.kind with
    | Init -> "init"
    | Internal -> "internal"
    | Send { msg; dst } -> Printf.sprintf "send(m%d->p%d)" msg dst
    | Recv { msg; src; send } ->
      Printf.sprintf "recv(m%d<-p%d#%d)" msg src send.seq
  in
  Format.fprintf fmt "%a@%s %s" pp_id e.id (Q.to_string e.lt) kind_str

module Id_key = struct
  type t = id

  let equal = id_equal
  let hash = id_hash
  let compare = id_compare
end

module Id_tbl = Hashtbl.Make (Id_key)
module Id_set = Set.Make (Id_key)
