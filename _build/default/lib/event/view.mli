(** Views of executions (Section 2 of the paper).

    A view is an execution with the real-time attributes projected away: a
    causally closed set of events.  This module maintains a view as events
    are learned, enforcing that an event is only added after its
    dependencies (the previous event at its processor, and — for a receive —
    the matching send).

    Liveness follows Definition 3.1: a point [p] of a view is {e live} when
    [p] is the last point of some processor, or [p] is a send whose receive
    is not in the view. *)

type t

val create : n_procs:int -> t
val n_procs : t -> int

val add : t -> Event.t -> unit
(** @raise Invalid_argument when a dependency is missing, the event is
    already present, or its local time regresses w.r.t. its predecessor. *)

val mem : t -> Event.id -> bool
val find : t -> Event.id -> Event.t option
val find_exn : t -> Event.id -> Event.t
val last_of : t -> Event.proc -> Event.t option
val events_of : t -> Event.proc -> Event.t list
(** Events of one processor in sequence order. *)

val size : t -> int
val iter : t -> (Event.t -> unit) -> unit
(** Iterates in insertion order (a topological order of the view). *)

val fold : t -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
val to_list : t -> Event.t list

val recv_of_msg : t -> int -> Event.id option
(** The receive event of a message id, when it is in the view. *)

val is_live : t -> Event.id -> bool
(** Definition 3.1. @raise Invalid_argument when the event is absent. *)

val live_points : t -> Event.t list

val topo_sort_batch : t -> Event.t list -> Event.t list
(** Orders a batch of new events so that each event's dependencies are
    either already in the view or earlier in the returned list.
    @raise Invalid_argument when the batch is not causally closed w.r.t.
    the view (a dependency is nowhere to be found). *)

val merge_batch : t -> Event.t list -> Event.t list
(** [merge_batch t batch] topologically sorts [batch], drops events already
    known, adds the rest to the view, and returns them in insertion
    order. *)
