lib/event/hb.ml: Event List View
