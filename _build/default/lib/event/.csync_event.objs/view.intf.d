lib/event/view.mli: Event
