lib/event/event.ml: Format Hashtbl Printf Q Set
