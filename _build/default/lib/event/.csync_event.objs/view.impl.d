lib/event/view.ml: Array Event Format Hashtbl List Q
