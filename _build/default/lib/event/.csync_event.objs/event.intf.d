lib/event/event.mli: Format Hashtbl Q Set
