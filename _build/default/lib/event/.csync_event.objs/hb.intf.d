lib/event/hb.mli: Event View
