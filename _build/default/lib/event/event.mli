(** Events ("points") of a distributed execution.

    An event is identified by the processor it occurs at and a per-processor
    sequence number; it carries the local clock reading at its occurrence
    and its kind.  Receive events reference their matching send event — this
    is how the execution graph's message edges are reconstructed from a
    view.  Real times of occurrence are deliberately {e absent}: a view
    contains only attributes available inside the system (Section 2 of the
    paper). *)

type proc = int
(** Processor identifier, a dense index [0 .. n-1]. *)

type id = { proc : proc; seq : int }
(** [seq] counts events at [proc] from 0. *)

type kind =
  | Init  (** the first event of a processor (its startup) *)
  | Internal  (** a local event with no communication *)
  | Send of { msg : int; dst : proc }
  | Recv of { msg : int; src : proc; send : id }
      (** [send] is the id of the matching send event. *)

type t = { id : id; lt : Q.t; kind : kind }

val id_compare : id -> id -> int
val id_equal : id -> id -> bool
val id_hash : id -> int
val pp_id : Format.formatter -> id -> unit

val loc : t -> proc

val prev_id : t -> id option
(** The immediately preceding event at the same processor, if any. *)

val is_send : t -> bool
val is_recv : t -> bool

val sent_msg : t -> int option
(** The message id when the event is a send. *)

val pp : Format.formatter -> t -> unit

module Id_tbl : Hashtbl.S with type key = id
module Id_set : Set.S with type elt = id
