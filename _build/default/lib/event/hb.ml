(* Backward reachability over view edges.  Predecessors of an event are its
   same-processor predecessor and, for a receive, the matching send. *)

let preds (e : Event.t) =
  let prev = match Event.prev_id e with None -> [] | Some p -> [ p ] in
  match e.kind with
  | Event.Recv { send; _ } -> send :: prev
  | Event.Init | Event.Internal | Event.Send _ -> prev

let causal_past view target =
  let visited = Event.Id_tbl.create 16 in
  let order = ref [] in
  let rec dfs id =
    if not (Event.Id_tbl.mem visited id) then begin
      Event.Id_tbl.replace visited id ();
      let e = View.find_exn view id in
      List.iter dfs (preds e);
      order := e :: !order
    end
  in
  dfs target;
  List.rev !order

let happened_before view p q =
  if Event.id_equal p q then true
  else begin
    let visited = Event.Id_tbl.create 16 in
    let rec dfs id =
      Event.id_equal id p
      ||
      if Event.Id_tbl.mem visited id then false
      else begin
        Event.Id_tbl.replace visited id ();
        List.exists dfs (preds (View.find_exn view id))
      end
    in
    dfs q
  end

let concurrent view p q =
  (not (happened_before view p q)) && not (happened_before view q p)
