lib/core/mirror.mli: Event Payload Q System_spec View
