lib/core/naive.mli: Event Interval Payload Q System_spec
