lib/core/csa.mli: Event Ext Interval Payload Q System_spec
