lib/core/csa.ml: Agdp Array Buffer Codec Drift Edges Event Ext Format Hashtbl History Interval List Payload Printf Q System_spec
