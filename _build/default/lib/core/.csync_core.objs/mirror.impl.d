lib/core/mirror.ml: Event Payload System_spec View
