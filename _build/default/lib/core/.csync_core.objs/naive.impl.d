lib/core/naive.ml: Event List Payload Q Reference System_spec View
