(** The general optimal algorithm of Section 2.3, as a runnable
    message-passing layer: "Send, in every message, the complete local
    view from the send point.  Merge local views in the natural way."

    Its estimates are identical to {!Csa}'s (both are the Theorem 2.1
    bounds); what differs is cost.  Every outgoing message carries the
    {e entire} view, the state is the whole event history, and each
    estimate solves shortest paths over it from scratch — the unbounded
    complexity that motivates the paper.  Used by the ablation experiment
    (E11) and as yet another cross-check oracle. *)

type t

val create : System_spec.t -> me:Event.proc -> lt0:Q.t -> t
val me : t -> Event.proc

val send : t -> dst:Event.proc -> msg:int -> lt:Q.t -> Payload.t
(** The payload's [events] is the complete local view (the send event
    included). *)

val receive : t -> msg:int -> lt:Q.t -> Payload.t -> unit

val local_event : t -> lt:Q.t -> unit

val estimate : t -> Interval.t
(** Optimal bounds at the last event — Theorem 2.1 computed on the full
    view with Bellman-Ford. *)

val state_size : t -> int
(** Number of events retained — grows with the execution, unlike the
    efficient algorithm's state. *)

val last_message_size : t -> int
(** Events carried by the most recent outgoing message. *)
