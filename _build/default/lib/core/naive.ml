type t = {
  spec : System_spec.t;
  me : Event.proc;
  view : View.t;
  mutable next_seq : int;
  mutable last_lt : Q.t;
  mutable last_message_size : int;
}

let create spec ~me ~lt0 =
  let view = View.create ~n_procs:(System_spec.n spec) in
  View.add view { Event.id = { proc = me; seq = 0 }; lt = lt0; kind = Event.Init };
  { spec; me; view; next_seq = 1; last_lt = lt0; last_message_size = 0 }

let me t = t.me
let state_size t = View.size t.view
let last_message_size t = t.last_message_size

let fresh t ~lt kind =
  if Q.(lt < t.last_lt) then invalid_arg "Naive: local time regression";
  let e = { Event.id = { proc = t.me; seq = t.next_seq }; lt; kind } in
  t.next_seq <- t.next_seq + 1;
  t.last_lt <- lt;
  e

let local_event t ~lt = View.add t.view (fresh t ~lt Event.Internal)

let send t ~dst ~msg ~lt =
  if System_spec.transit t.spec t.me dst = None then
    invalid_arg "Naive.send: no such link";
  let e = fresh t ~lt (Event.Send { msg; dst }) in
  View.add t.view e;
  let events = View.to_list t.view in
  t.last_message_size <- List.length events;
  { Payload.send_event = e; events }

let receive t ~msg ~lt (payload : Payload.t) =
  ignore (View.merge_batch t.view payload.events);
  let recv =
    fresh t ~lt
      (Event.Recv
         {
           msg;
           src = Event.loc payload.send_event;
           send = payload.send_event.id;
         })
  in
  View.add t.view recv

let estimate t =
  Reference.estimate t.spec t.view ~at:{ Event.proc = t.me; seq = t.next_seq - 1 }
