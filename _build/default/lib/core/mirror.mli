(** Test oracle: reconstructs a processor's full local view from the same
    inputs its {!Csa} instance sees.

    The efficient algorithm deliberately forgets dead events; to check its
    output against the {e reference} optimal algorithm (which needs the
    whole view), drive a [Mirror.t] alongside each [Csa.t] with identical
    calls and hand [view] to {!Reference.estimate}.  Event construction
    (sequence numbering) matches [Csa] exactly. *)

type t

val create : System_spec.t -> me:Event.proc -> lt0:Q.t -> t
val view : t -> View.t
val me : t -> Event.proc

val last_id : t -> Event.id
(** The id of this processor's latest event. *)

val local_event : t -> lt:Q.t -> unit

val send : t -> payload:Payload.t -> unit
(** Mirror a send: the payload returned by [Csa.send]. *)

val receive : t -> msg:int -> lt:Q.t -> payload:Payload.t -> unit
