type t = { view : View.t; me : Event.proc; mutable next_seq : int }

let create spec ~me ~lt0 =
  let view = View.create ~n_procs:(System_spec.n spec) in
  View.add view { Event.id = { proc = me; seq = 0 }; lt = lt0; kind = Event.Init };
  { view; me; next_seq = 1 }

let view t = t.view
let me t = t.me
let last_id t = { Event.proc = t.me; seq = t.next_seq - 1 }

let local_event t ~lt =
  View.add t.view
    { Event.id = { proc = t.me; seq = t.next_seq }; lt; kind = Event.Internal };
  t.next_seq <- t.next_seq + 1

let send t ~(payload : Payload.t) =
  let e = payload.send_event in
  if Event.loc e <> t.me || e.id.seq <> t.next_seq then
    invalid_arg "Mirror.send: unexpected send event";
  View.add t.view e;
  t.next_seq <- t.next_seq + 1

let receive t ~msg ~lt ~(payload : Payload.t) =
  ignore (View.merge_batch t.view payload.events);
  let src = Event.loc payload.send_event in
  View.add t.view
    {
      Event.id = { proc = t.me; seq = t.next_seq };
      lt;
      kind = Event.Recv { msg; src; send = payload.send_event.id };
    };
  t.next_seq <- t.next_seq + 1
