exception Negative_cycle

(* The live nodes occupy slots [0 .. count-1] of a square matrix [d] that
   stores exact pairwise distances of the accumulated graph.  [kill] swaps
   the victim's slot with the last one, so the matrix stays compact.  The
   matrix doubles in capacity when full. *)
type t = {
  mutable d : Ext.t array array;
  mutable keys : int array; (* slot -> key *)
  slot_of : (int, int) Hashtbl.t; (* key -> slot *)
  mutable count : int;
  mutable relax_count : int;
  mutable peak : int;
}

let initial_capacity = 8

let create () =
  {
    d = Array.make_matrix initial_capacity initial_capacity Ext.Inf;
    keys = Array.make initial_capacity (-1);
    slot_of = Hashtbl.create 16;
    count = 0;
    relax_count = 0;
    peak = 0;
  }

let mem t key = Hashtbl.mem t.slot_of key
let size t = t.count
let relaxations t = t.relax_count
let peak_size t = t.peak

let live_keys t =
  List.init t.count (fun i -> t.keys.(i)) |> List.sort compare

let slot_exn t key =
  match Hashtbl.find_opt t.slot_of key with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Agdp: node %d is not live" key)

let dist t x y =
  let sx = slot_exn t x and sy = slot_exn t y in
  t.d.(sx).(sy)

let grow t =
  let cap = Array.length t.keys in
  let cap' = 2 * cap in
  let d' = Array.make_matrix cap' cap' Ext.Inf in
  for i = 0 to t.count - 1 do
    Array.blit t.d.(i) 0 d'.(i) 0 t.count
  done;
  let keys' = Array.make cap' (-1) in
  Array.blit t.keys 0 keys' 0 t.count;
  t.d <- d';
  t.keys <- keys'

let insert t ~key ~in_edges ~out_edges =
  if mem t key then
    invalid_arg (Printf.sprintf "Agdp.insert: duplicate key %d" key);
  List.iter
    (fun (x, _) ->
      if x = key then invalid_arg "Agdp.insert: self-loop edge")
    (in_edges @ out_edges);
  (* resolve endpoints before mutating anything, so a failed insert
     leaves the structure untouched *)
  let in_edges = List.map (fun (x, w) -> (slot_exn t x, w)) in_edges
  and out_edges = List.map (fun (y, w) -> (slot_exn t y, w)) out_edges in
  if t.count = Array.length t.keys then grow t;
  let k = t.count in
  t.count <- k + 1;
  t.keys.(k) <- key;
  Hashtbl.replace t.slot_of key k;
  if t.count > t.peak then t.peak <- t.count;
  let d = t.d in
  (* fresh row/column *)
  for i = 0 to k do
    d.(i).(k) <- Ext.Inf;
    d.(k).(i) <- Ext.Inf
  done;
  d.(k).(k) <- Ext.zero;
  (* Distances to/from the new node: every path i ⇝ k decomposes as
     i ⇝ a plus an edge (a, k), with i ⇝ a entirely over old nodes whose
     pairwise distances are already exact; symmetrically for k ⇝ i. *)
  for i = 0 to k - 1 do
    List.iter
      (fun (a, w) ->
        t.relax_count <- t.relax_count + 1;
        let cand = Ext.add d.(i).(a) (Ext.Fin w) in
        if Ext.lt cand d.(i).(k) then d.(i).(k) <- cand)
      in_edges;
    List.iter
      (fun (b, w) ->
        t.relax_count <- t.relax_count + 1;
        let cand = Ext.add (Ext.Fin w) d.(b).(i) in
        if Ext.lt cand d.(k).(i) then d.(k).(i) <- cand)
      out_edges
  done;
  (* a path through k and back would be a cycle: detect negative ones *)
  for i = 0 to k - 1 do
    t.relax_count <- t.relax_count + 1;
    if Ext.lt (Ext.add d.(k).(i) d.(i).(k)) Ext.zero then raise Negative_cycle
  done;
  (* relax all pairs through the new node: O(L²) *)
  for i = 0 to k - 1 do
    let dik = d.(i).(k) in
    if Ext.is_fin dik then
      for j = 0 to k - 1 do
        t.relax_count <- t.relax_count + 1;
        let cand = Ext.add dik d.(k).(j) in
        if Ext.lt cand d.(i).(j) then d.(i).(j) <- cand
      done
  done;
  for i = 0 to k - 1 do
    if Ext.lt d.(i).(i) Ext.zero then raise Negative_cycle
  done

type snapshot = {
  s_keys : int array;
  s_dist : Ext.t array array;
  s_relaxations : int;
  s_peak : int;
}

let snapshot t =
  {
    s_keys = Array.sub t.keys 0 t.count;
    s_dist =
      Array.init t.count (fun i -> Array.sub t.d.(i) 0 t.count);
    s_relaxations = t.relax_count;
    s_peak = t.peak;
  }

let restore s =
  let count = Array.length s.s_keys in
  let cap = max initial_capacity count in
  let t =
    {
      d = Array.make_matrix cap cap Ext.Inf;
      keys = Array.make cap (-1);
      slot_of = Hashtbl.create (max 16 count);
      count;
      relax_count = s.s_relaxations;
      peak = s.s_peak;
    }
  in
  Array.blit s.s_keys 0 t.keys 0 count;
  Array.iteri (fun i key -> Hashtbl.replace t.slot_of key i) s.s_keys;
  for i = 0 to count - 1 do
    Array.blit s.s_dist.(i) 0 t.d.(i) 0 count
  done;
  t

let kill t key =
  let s = slot_exn t key in
  let last = t.count - 1 in
  let d = t.d in
  if s <> last then begin
    (* move the last slot into s *)
    for j = 0 to last do
      d.(s).(j) <- d.(last).(j)
    done;
    for i = 0 to last do
      d.(i).(s) <- d.(i).(last)
    done;
    d.(s).(s) <- d.(last).(last);
    let moved_key = t.keys.(last) in
    t.keys.(s) <- moved_key;
    Hashtbl.replace t.slot_of moved_key s
  end;
  t.keys.(last) <- -1;
  Hashtbl.remove t.slot_of key;
  t.count <- last
