type bound =
  | Neg_inf
  | B of Q.t
  | Pos_inf

type t = { lo : bound; hi : bound }

let compare_bound a b =
  match a, b with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ | _, Pos_inf -> -1
  | _, Neg_inf | Pos_inf, _ -> 1
  | B x, B y -> Q.compare x y

let make lo hi =
  if compare_bound lo hi > 0 then invalid_arg "Interval.make: empty interval";
  { lo; hi }

let of_q lo hi = make (B lo) (B hi)
let full = { lo = Neg_inf; hi = Pos_inf }
let point q = { lo = B q; hi = B q }
let lo i = i.lo
let hi i = i.hi

let mem q i =
  compare_bound i.lo (B q) <= 0 && compare_bound (B q) i.hi <= 0

let width i =
  match i.lo, i.hi with
  | B a, B b -> Ext.Fin (Q.sub b a)
  | _ -> Ext.Inf

let shift_bound b q =
  match b with
  | Neg_inf -> Neg_inf
  | Pos_inf -> Pos_inf
  | B x -> B (Q.add x q)

let shift i q = { lo = shift_bound i.lo q; hi = shift_bound i.hi q }

let widen i ~lo_by ~hi_by =
  if Q.sign lo_by < 0 || Q.sign hi_by < 0 then
    invalid_arg "Interval.widen: negative slack";
  { lo = shift_bound i.lo (Q.neg lo_by); hi = shift_bound i.hi hi_by }

let inter a b =
  let lo = if compare_bound a.lo b.lo >= 0 then a.lo else b.lo in
  let hi = if compare_bound a.hi b.hi <= 0 then a.hi else b.hi in
  if compare_bound lo hi > 0 then None else Some { lo; hi }

let subset a b = compare_bound b.lo a.lo <= 0 && compare_bound a.hi b.hi <= 0

let equal a b = compare_bound a.lo b.lo = 0 && compare_bound a.hi b.hi = 0

let string_of_bound = function
  | Neg_inf -> "-inf"
  | Pos_inf -> "+inf"
  | B q -> Q.to_string q

let to_string i =
  "[" ^ string_of_bound i.lo ^ ", " ^ string_of_bound i.hi ^ "]"

let pp fmt i = Format.pp_print_string fmt (to_string i)

let approx_of_bound = function
  | Neg_inf -> "-inf"
  | Pos_inf -> "+inf"
  | B q ->
    let f = Q.to_float q in
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f

let to_string_approx i =
  "[" ^ approx_of_bound i.lo ^ ", " ^ approx_of_bound i.hi ^ "]"
