(** Edge weights extended with positive infinity.

    Synchronization-graph distances live in [Q ∪ {+∞}]: a pair of events
    with no directed path between them is at distance [+∞] (the bounds
    mapping value ⊤ of the paper). *)

type t =
  | Fin of Q.t
  | Inf

val zero : t
val of_q : Q.t -> t
val of_int : int -> t

val is_fin : t -> bool

val fin_exn : t -> Q.t
(** @raise Invalid_argument on [Inf]. *)

val add : t -> t -> t
(** [Inf] absorbs. *)

val neg_fin : t -> t
(** Negates a finite value; [Inf] maps to [Inf] (used when reversing
    reachability, where "no path" stays "no path"). *)

val compare : t -> t -> int
(** Total order with [Inf] greatest. *)

val equal : t -> t -> bool
val min : t -> t -> t
val lt : t -> t -> bool
val le : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
