(** Closed intervals over the extended rational line.

    A clock synchronization algorithm outputs an interval
    [[ext_L, ext_U]] guaranteed to contain the source time.  Before any
    information about the source has arrived, the interval is the whole
    line. *)

type bound =
  | Neg_inf
  | B of Q.t
  | Pos_inf

type t = private { lo : bound; hi : bound }

val make : bound -> bound -> t
(** @raise Invalid_argument when the interval would be empty
    ([lo > hi]). *)

val of_q : Q.t -> Q.t -> t
val full : t
val point : Q.t -> t
val lo : t -> bound
val hi : t -> bound
val mem : Q.t -> t -> bool

val width : t -> Ext.t
(** [hi - lo], or [Inf] when either endpoint is infinite. *)

val shift : t -> Q.t -> t
(** Translate both endpoints. *)

val widen : t -> lo_by:Q.t -> hi_by:Q.t -> t
(** [widen i ~lo_by ~hi_by] is [[lo - lo_by, hi + hi_by]];
    the slack arguments must be non-negative. *)

val inter : t -> t -> t option
(** Intersection, or [None] when disjoint. *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val equal : t -> t -> bool

val compare_bound : bound -> bound -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_string_approx : t -> string
(** Human-friendly decimal rendering, e.g. ["[21.9989, 26.0011]"]; exact
    rationals are available via {!to_string}. *)
