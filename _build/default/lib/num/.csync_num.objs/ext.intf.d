lib/num/ext.mli: Format Q
