lib/num/interval.mli: Ext Format Q
