lib/num/interval.ml: Ext Float Format Printf Q
