lib/num/ext.ml: Format Q
