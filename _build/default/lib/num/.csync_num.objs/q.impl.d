lib/num/q.ml: Bigint Format String
