lib/num/q.mli: Bigint Format
