type wire = { t3 : Q.t; est : Interval.t; echo : echo option }
and echo = { msg : int; t1 : Q.t; t2 : Q.t }

type policy = { accept_rtt : Ext.t; intersect : bool }

let ntp_policy = { accept_rtt = Ext.Inf; intersect = true }

let cristian_policy ~rtt_threshold =
  { accept_rtt = Ext.Fin rtt_threshold; intersect = false }

type t = {
  policy : policy;
  spec : System_spec.t;
  me : Event.proc;
  sent : (int, Q.t) Hashtbl.t; (* my message id -> t1 *)
  pending_echo : (Event.proc, echo) Hashtbl.t; (* peer -> echo to attach *)
  mutable anchor : (Q.t * Interval.t) option; (* (lt, interval at lt) *)
  mutable accepted : int;
  mutable rejected : int;
}

let create policy spec ~me ~lt0 =
  let anchor =
    if me = System_spec.source spec then Some (lt0, Interval.point lt0)
    else None
  in
  {
    policy;
    spec;
    me;
    sent = Hashtbl.create 16;
    pending_echo = Hashtbl.create 8;
    anchor;
    accepted = 0;
    rejected = 0;
  }

let me t = t.me
let samples_accepted t = t.accepted
let samples_rejected t = t.rejected

(* Propagate an anchor interval forward: if the source time at the anchor
   instant was in [lo, hi] and my clock has advanced by Δ since, the real
   elapse is in [rmin·Δ, rmax·Δ], so the source time now lies in
   [lo + rmin·Δ, hi + rmax·Δ]. *)
let widen_to t (anchor_lt, interval) lt =
  let d = System_spec.drift t.spec t.me in
  let delta = Q.sub lt anchor_lt in
  if Q.sign delta < 0 then invalid_arg "Rtt_estimator: query before anchor";
  Interval.widen
    (Interval.shift interval delta)
    ~lo_by:(Q.mul (Q.sub Q.one d.Drift.rmin) delta)
    ~hi_by:(Q.mul (Q.sub d.Drift.rmax Q.one) delta)

let estimate_at t ~lt =
  if t.me = System_spec.source t.spec then Interval.point lt
  else
    match t.anchor with
    | None -> Interval.full
    | Some a -> widen_to t a lt

let on_send t ~dst ~msg ~lt =
  Hashtbl.replace t.sent msg lt;
  let echo = Hashtbl.find_opt t.pending_echo dst in
  { t3 = lt; est = estimate_at t ~lt; echo }

(* Interval for the source time at t4 derived from one round trip; see the
   interface comment for the bound. *)
let sample_interval t ~src ~t1 ~t2 ~(wire : wire) ~t4 =
  let req = System_spec.transit_exn t.spec t.me src in
  let resp = System_spec.transit_exn t.spec src t.me in
  let me_drift = System_spec.drift t.spec t.me in
  let peer_drift = System_spec.drift t.spec src in
  let rtt = Q.sub t4 t1 in
  let hold = Q.max Q.zero (Q.sub wire.t3 t2) in
  if Q.sign rtt < 0 then None
  else begin
    let open Drift in
    let open Transit in
    let rt_budget =
      Q.sub
        (Q.sub (Q.mul me_drift.rmax rtt) req.lo)
        (Q.mul peer_drift.rmin hold)
    in
    let resp_hi =
      match resp.hi with
      | Ext.Inf -> rt_budget
      | Ext.Fin h -> Q.min h rt_budget
    in
    if Q.(resp_hi < resp.lo) then None
    else begin
      let lo =
        match Interval.lo wire.est with
        | Interval.Neg_inf -> Interval.Neg_inf
        | Interval.B a -> Interval.B (Q.add a resp.lo)
        | Interval.Pos_inf -> Interval.Pos_inf
      in
      let hi =
        match Interval.hi wire.est with
        | Interval.Pos_inf -> Interval.Pos_inf
        | Interval.B b -> Interval.B (Q.add b resp_hi)
        | Interval.Neg_inf -> Interval.Neg_inf
      in
      Some (Interval.make lo hi)
    end
  end

let on_recv t ~src ~msg ~lt wire =
  (* remember what to echo on the next send to this peer *)
  Hashtbl.replace t.pending_echo src { msg; t1 = wire.t3; t2 = lt };
  if t.me <> System_spec.source t.spec then begin
    match wire.echo with
    | Some { msg = my_msg; t2; _ } -> begin
      match Hashtbl.find_opt t.sent my_msg with
      | None -> ()
      | Some t1 ->
        Hashtbl.remove t.sent my_msg;
        let t4 = lt in
        let rtt = Q.sub t4 t1 in
        let fast_enough = Ext.le (Ext.Fin rtt) t.policy.accept_rtt in
        if not fast_enough then t.rejected <- t.rejected + 1
        else begin
          match sample_interval t ~src ~t1 ~t2 ~wire ~t4 with
          | None -> t.rejected <- t.rejected + 1
          | Some sample ->
            t.accepted <- t.accepted + 1;
            let current =
              match t.anchor with
              | None -> Interval.full
              | Some a -> widen_to t a t4
            in
            let updated =
              if t.policy.intersect then
                match Interval.inter current sample with
                | Some i -> i
                | None ->
                  (* both are sound, so with exact arithmetic this cannot
                     happen; keep the fresh sample defensively *)
                  sample
              else begin
                (* best-single-sample policy: keep whichever is tighter *)
                let better =
                  Ext.lt (Interval.width sample) (Interval.width current)
                in
                if better then sample else current
              end
            in
            t.anchor <- Some (t4, updated)
        end
    end
    | None -> ()
  end
