type wire = Rtt_estimator.wire
type t = Rtt_estimator.t

let name = "ntp"
let create spec ~me ~lt0 = Rtt_estimator.create Rtt_estimator.ntp_policy spec ~me ~lt0
let on_send = Rtt_estimator.on_send
let on_recv = Rtt_estimator.on_recv
let estimate_at = Rtt_estimator.estimate_at
let samples_accepted = Rtt_estimator.samples_accepted
