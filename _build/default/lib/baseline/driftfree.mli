(** The drift-free algorithm with a "fudge factor" — the practical
    adaptation the paper's introduction describes and rejects as
    non-optimal ([18]).

    The Patt-Shamir–Rajsbaum drift-free algorithm is rerun over a sliding
    window of recent events, with all clocks pretended perfect (same-
    processor edges get weight 0).  The result is then widened by a fudge
    factor that restores soundness: any path in the window graph traverses
    each processor's timeline at most over its retained local span, so
    adding [Σ_p dev_p · span_p] on each side covers the drift the window
    ignored.  Knowledge older than the window survives only as an
    {e anchor} — the last computed interval, widened by the local drift
    bound as time passes.

    It consumes the same full-information payloads as the optimal
    algorithm, so comparisons are apples-to-apples on identical traffic.

    Soundness is preserved (tests check containment); optimality is not:
    the window fudge and anchor widening are exactly what the optimal
    algorithm avoids by reasoning on the true drift-weighted graph. *)

type t

val create :
  window:Q.t ->
  ?recompute:Q.t ->
  System_spec.t ->
  me:Event.proc ->
  lt0:Q.t ->
  t
(** [window] is the local-time span of events retained for the graph
    computation; larger windows tighten the graph part but pay a larger
    fudge.  [recompute] (default [window / 8]) is how often — in local
    time — the window graph is re-solved, matching the paper's "run a new
    version of the algorithm every short while"; between recomputations
    the last result is propagated under the drift bound. *)

val name : string

val on_send : t -> payload:Payload.t -> unit
(** Observe my own outgoing message ([payload] as returned by [Csa.send];
    only its send event is used). *)

val on_recv : t -> msg:int -> lt:Q.t -> payload:Payload.t -> unit
(** Observe an incoming message and recompute the window estimate. *)

val estimate_at : t -> lt:Q.t -> Interval.t

val retained_events : t -> int
val negative_cycle_fallbacks : t -> int
(** How often the drift-free pretence became self-contradictory on the
    window (forcing an anchor-only estimate) — a qualitative cost of the
    strawman the paper's optimal algorithm never pays. *)
