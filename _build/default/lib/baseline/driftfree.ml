type retained = { ev : Event.t; arrival : Q.t (* my local time when learned *) }

type t = {
  spec : System_spec.t;
  me : Event.proc;
  window : Q.t;
  recompute : Q.t;
  mutable retained : retained list; (* newest first *)
  known : int array; (* per processor: highest seq retained-or-seen *)
  mutable my_seq : int; (* fabricated ids for my own timeline *)
  mutable my_last_lt : Q.t;
  mutable anchor : (Q.t * Interval.t) option;
  mutable last_recompute : Q.t option;
  mutable cycle_fallbacks : int;
}

let name = "driftfree"

let create ~window ?recompute spec ~me ~lt0 =
  if Q.(window <= zero) then invalid_arg "Driftfree.create: window <= 0";
  let recompute =
    match recompute with Some r -> r | None -> Q.div_int window 8
  in
  if Q.(recompute <= zero) then invalid_arg "Driftfree.create: recompute <= 0";
  let t =
    {
      spec;
      me;
      window;
      recompute;
      retained = [];
      known = Array.make (System_spec.n spec) (-1);
      my_seq = 0;
      my_last_lt = lt0;
      anchor = None;
      last_recompute = None;
      cycle_fallbacks = 0;
    }
  in
  let init = { Event.id = { proc = me; seq = 0 }; lt = lt0; kind = Event.Init } in
  t.retained <- [ { ev = init; arrival = lt0 } ];
  t.known.(me) <- 0;
  t.my_seq <- 1;
  if me = System_spec.source spec then t.anchor <- Some (lt0, Interval.point lt0);
  t

let retained_events t = List.length t.retained
let negative_cycle_fallbacks t = t.cycle_fallbacks

let retain t ~arrival (ev : Event.t) =
  let p = Event.loc ev in
  if ev.id.seq > t.known.(p) then begin
    t.known.(p) <- ev.id.seq;
    t.retained <- { ev; arrival } :: t.retained
  end

let prune t ~now =
  let horizon = Q.sub now t.window in
  t.retained <- List.filter (fun r -> Q.(r.arrival >= horizon)) t.retained

let fresh_own t ~lt kind =
  let e = { Event.id = { proc = t.me; seq = t.my_seq }; lt; kind } in
  t.my_seq <- t.my_seq + 1;
  t.my_last_lt <- lt;
  e

let on_send t ~(payload : Payload.t) =
  let s = payload.send_event in
  (* re-key the send event onto my private timeline numbering *)
  let dst = match s.kind with Event.Send { dst; _ } -> dst | _ -> t.me in
  let msg = match s.kind with Event.Send { msg; _ } -> msg | _ -> -1 in
  let e = fresh_own t ~lt:s.lt (Event.Send { msg; dst }) in
  retain t ~arrival:s.lt e;
  prune t ~now:s.lt

let deviation_of t p = Drift.max_deviation (System_spec.drift t.spec p)

(* Propagate an interval for the source time forward by a local elapse Δ:
   the source advances by the real elapse, which is in [rmin·Δ, rmax·Δ]. *)
let propagate t interval delta =
  if Q.sign delta < 0 then invalid_arg "Driftfree: query before anchor";
  let d = System_spec.drift t.spec t.me in
  Interval.widen
    (Interval.shift interval delta)
    ~lo_by:(Q.mul (Q.sub Q.one d.Drift.rmin) delta)
    ~hi_by:(Q.mul (Q.sub d.Drift.rmax Q.one) delta)

let widen_anchor t (anchor_lt, interval) lt = propagate t interval (Q.sub lt anchor_lt)

(* Build the drift-free window graph and compute the interval at my last
   retained event, then widen to [lt]. *)
let window_estimate t ~lt =
  if t.me = System_spec.source t.spec then Some (Interval.point lt)
  else begin
    let events = List.map (fun r -> r.ev) t.retained in
    let n_ev = List.length events in
    let index = Event.Id_tbl.create n_ev in
    let arr = Array.of_list events in
    Array.iteri (fun i (e : Event.t) -> Event.Id_tbl.replace index e.id i) arr;
    let g = Digraph.create n_ev in
    (* same-processor edges, weight 0 both ways (the drift-free pretence) *)
    let by_proc = Hashtbl.create 8 in
    Array.iter
      (fun (e : Event.t) ->
        let p = Event.loc e in
        Hashtbl.replace by_proc p
          (e :: Option.value ~default:[] (Hashtbl.find_opt by_proc p)))
      arr;
    Hashtbl.iter
      (fun _ evs ->
        let sorted =
          List.sort (fun (a : Event.t) (b : Event.t) -> compare a.id.seq b.id.seq) evs
        in
        let rec link = function
          | a :: (b :: _ as rest) ->
            let ia = Event.Id_tbl.find index a.Event.id
            and ib = Event.Id_tbl.find index b.Event.id in
            Digraph.add_edge g ia ib Q.zero;
            Digraph.add_edge g ib ia Q.zero;
            link rest
          | _ -> ()
        in
        link sorted)
      by_proc;
    (* message edges where both endpoints survived the window *)
    let sends = Hashtbl.create 16 in
    Array.iter
      (fun (e : Event.t) ->
        match e.kind with
        | Event.Send { msg; _ } -> Hashtbl.replace sends msg e
        | _ -> ())
      arr;
    Array.iter
      (fun (e : Event.t) ->
        match e.kind with
        | Event.Recv { msg; src; _ } -> begin
          match Hashtbl.find_opt sends msg with
          | None -> ()
          | Some s ->
            let tr = System_spec.transit_exn t.spec src (Event.loc e) in
            let vd = Q.sub e.lt s.lt in
            let is = Event.Id_tbl.find index s.id
            and ie = Event.Id_tbl.find index e.id in
            Digraph.add_edge g is ie (Q.sub vd tr.Transit.lo);
            (match tr.Transit.hi with
            | Ext.Inf -> ()
            | Ext.Fin hi -> Digraph.add_edge g ie is (Q.sub hi vd))
        end
        | _ -> ())
      arr;
    (* latest retained source point and my latest retained point *)
    let latest p =
      Array.to_list arr
      |> List.filter (fun (e : Event.t) -> Event.loc e = p)
      |> List.fold_left
           (fun acc (e : Event.t) ->
             match acc with
             | Some (a : Event.t) when a.id.seq >= e.id.seq -> acc
             | _ -> Some e)
           None
    in
    match latest (System_spec.source t.spec), latest t.me with
    | None, _ | _, None -> None
    | Some sp, Some p -> begin
      try
        let isp = Event.Id_tbl.find index sp.id
        and ip = Event.Id_tbl.find index p.id in
        let from_sp = Bellman_ford.sssp g isp in
        let to_sp = Bellman_ford.sssp (Digraph.reverse g) isp in
        match from_sp.(ip), to_sp.(ip) with
        | Ext.Fin d_sp_p, Ext.Fin d_p_sp ->
          (* fudge: each processor's retained local span times its drift
             deviation, summed — covers every simple path's ignored drift *)
          let fudge =
            Hashtbl.fold
              (fun proc evs acc ->
                let lts = List.map (fun (e : Event.t) -> e.lt) evs in
                let span =
                  match lts with
                  | [] -> Q.zero
                  | x :: rest ->
                    let mn = List.fold_left Q.min x rest
                    and mx = List.fold_left Q.max x rest in
                    Q.sub mx mn
                in
                Q.add acc (Q.mul (deviation_of t proc) span))
              by_proc Q.zero
          in
          let lo = Q.sub p.lt (Q.add d_sp_p fudge) in
          let hi = Q.add p.lt (Q.add d_p_sp fudge) in
          (* propagate from my last retained point to the query time *)
          Some (propagate t (Interval.of_q lo hi) (Q.sub lt p.lt))
        | _ -> None
      with Bellman_ford.Negative_cycle ->
        (* the drift-free pretence contradicted itself on this window *)
        t.cycle_fallbacks <- t.cycle_fallbacks + 1;
        None
    end
  end

(* Between recomputations the estimate is just the last anchor propagated
   under the drift bound — exactly the "fudge factor" behaviour of the
   strawman.  The expensive window graph is only re-solved every
   [recompute] of local time (at a receive). *)
let estimate_at t ~lt =
  if t.me = System_spec.source t.spec then Interval.point lt
  else
    match t.anchor with
    | None -> Interval.full
    | Some a -> widen_anchor t a lt

let resolve_window t ~lt =
  t.last_recompute <- Some lt;
  let from_anchor = Option.map (fun a -> widen_anchor t a lt) t.anchor in
  let from_window = window_estimate t ~lt in
  let combined =
    match from_anchor, from_window with
    | None, None -> None
    | (Some _ as i), None | None, (Some _ as i) -> i
    | Some a, Some w -> (
      match Interval.inter a w with Some i -> Some i | None -> Some w)
  in
  match combined with
  | Some i -> t.anchor <- Some (lt, i)
  | None -> ()

let on_recv t ~msg ~lt ~(payload : Payload.t) =
  (* my own events are tracked on a private numbering; a peer re-reporting
     them must not introduce a second copy of my timeline *)
  List.iter
    (fun (e : Event.t) -> if Event.loc e <> t.me then retain t ~arrival:lt e)
    payload.events;
  let recv =
    fresh_own t ~lt
      (Event.Recv
         { msg; src = Event.loc payload.send_event; send = payload.send_event.id })
  in
  retain t ~arrival:lt recv;
  prune t ~now:lt;
  let due =
    match t.last_recompute with
    | None -> true
    | Some last -> Q.(Q.add last t.recompute <= lt)
  in
  if due then resolve_window t ~lt
