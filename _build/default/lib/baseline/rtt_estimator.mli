(** Shared round-trip interval estimation used by the practical baselines
    (Section 4 of the paper discusses both).

    A node timestamps its request ([t1]), the peer echoes its receive time
    ([t2]) and reply time ([t3]) together with the peer's own interval
    estimate of the source time at [t3], and the node reads its clock at
    arrival ([t4]).  From the link's transit bounds and both clocks' drift
    bounds this yields a {e sound} interval for the source time at [t4]:

    source at t4 ∈ [est.lo + lo_resp,
                    est.hi + min(hi_resp, rmax·(t4−t1) − lo_req − rmin_peer·(t3−t2))]

    Unlike the paper's optimal algorithm, this uses only the latest
    round-trip sample per peer (plus drift-widened memory) — no global
    synchronization-graph reasoning — which is exactly what makes NTP-style
    estimators suboptimal. *)

type wire = {
  t3 : Q.t;  (** sender's transmit local time *)
  est : Interval.t;  (** sender's source-time interval at [t3] *)
  echo : echo option;  (** acknowledgment of the last message from the peer *)
}

and echo = {
  msg : int;  (** the peer's message id being echoed *)
  t1 : Q.t;  (** that message's transmit time (peer clock) *)
  t2 : Q.t;  (** its receive time (sender clock) *)
}

type policy = {
  accept_rtt : Ext.t;
      (** accept a sample only when the local round trip is at most this
          (Cristian's quick-round-trip filter); [Inf] accepts all *)
  intersect : bool;
      (** combine each accepted sample with drift-widened memory by
          intersection (NTP-flavoured) instead of keeping the best single
          sample *)
}

val ntp_policy : policy
val cristian_policy : rtt_threshold:Q.t -> policy

type t

val create : policy -> System_spec.t -> me:Event.proc -> lt0:Q.t -> t
val me : t -> Event.proc

val on_send : t -> dst:Event.proc -> msg:int -> lt:Q.t -> wire

val on_recv : t -> src:Event.proc -> msg:int -> lt:Q.t -> wire -> unit

val estimate_at : t -> lt:Q.t -> Interval.t
(** Sound interval for the source time at local time [lt]. *)

val samples_accepted : t -> int
val samples_rejected : t -> int
