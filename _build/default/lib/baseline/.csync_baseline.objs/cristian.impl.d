lib/baseline/cristian.ml: Rtt_estimator
