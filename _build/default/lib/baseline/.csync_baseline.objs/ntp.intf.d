lib/baseline/ntp.mli: Event Interval Q Rtt_estimator System_spec
