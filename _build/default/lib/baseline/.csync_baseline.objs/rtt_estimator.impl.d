lib/baseline/rtt_estimator.ml: Drift Event Ext Hashtbl Interval Q System_spec Transit
