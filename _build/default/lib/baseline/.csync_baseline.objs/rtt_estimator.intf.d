lib/baseline/rtt_estimator.mli: Event Ext Interval Q System_spec
