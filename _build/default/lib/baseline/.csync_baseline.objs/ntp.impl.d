lib/baseline/ntp.ml: Rtt_estimator
