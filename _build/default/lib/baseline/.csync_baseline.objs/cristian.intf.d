lib/baseline/cristian.mli: Event Interval Q Rtt_estimator System_spec
