lib/baseline/driftfree.mli: Event Interval Payload Q System_spec
