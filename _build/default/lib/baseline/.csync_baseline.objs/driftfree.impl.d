lib/baseline/driftfree.ml: Array Bellman_ford Digraph Drift Event Ext Hashtbl Interval List Option Payload Q System_spec Transit
