(** Cristian's probabilistic clock synchronization baseline [5].

    The client keeps only its best (tightest) round-trip sample and accepts
    a sample only when the round trip was quick — below [rtt_threshold].
    Coupled with the burst traffic pattern (retry until a quick round trip
    succeeds), this reproduces the behaviour Section 4 analyzes: with high
    probability a burst terminates quickly, and the estimate quality is
    governed by the threshold. *)

type wire = Rtt_estimator.wire
type t

val create : rtt_threshold:Q.t -> System_spec.t -> me:Event.proc -> lt0:Q.t -> t
val name : string
val on_send : t -> dst:Event.proc -> msg:int -> lt:Q.t -> wire
val on_recv : t -> src:Event.proc -> msg:int -> lt:Q.t -> wire -> unit
val estimate_at : t -> lt:Q.t -> Interval.t
val samples_accepted : t -> int
val samples_rejected : t -> int
