(** NTP-flavoured baseline (Mills [15, 16], interval form).

    Every round trip yields a sound interval via {!Rtt_estimator}; samples
    from all peers and drift-widened memory are combined by intersection,
    mimicking NTP's clock-filter/combine stages at the granularity this
    model supports.  Stratum propagation is implicit: a peer's wire carries
    its own current interval, so accuracy degrades hop by hop from the
    source, like NTP's root distance. *)

type wire = Rtt_estimator.wire
type t

val create : System_spec.t -> me:Event.proc -> lt0:Q.t -> t
val name : string
val on_send : t -> dst:Event.proc -> msg:int -> lt:Q.t -> wire
val on_recv : t -> src:Event.proc -> msg:int -> lt:Q.t -> wire -> unit
val estimate_at : t -> lt:Q.t -> Interval.t
val samples_accepted : t -> int
