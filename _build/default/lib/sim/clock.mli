(** Drifting hardware clocks for the simulator.

    A clock is a piecewise-linear monotone map between real time and local
    time whose inverse rate [dRT/dLT] stays within the processor's drift
    bound on every segment — i.e. the simulated hardware always satisfies
    the specification the synchronization algorithm assumes, which is what
    makes the containment experiments meaningful.

    Rate policies:
    - [`Fixed r]: constant inverse rate [r];
    - [`Random]: a fresh uniform rate in [[rmin, rmax]] per segment;
    - [`Adversarial]: alternate between the extreme rates [rmin] and
      [rmax] each segment (maximizes accumulated uncertainty);
    - [`Sawtooth k]: cycle through [k] evenly spaced rates. *)

type policy = [ `Fixed of Q.t | `Random | `Adversarial | `Sawtooth of int ]

type t

val create :
  drift:Drift.t ->
  policy:policy ->
  segment:Q.t ->
  lt0:Q.t ->
  rng:Rng.t ->
  t
(** [segment] is the local-time length of each constant-rate segment;
    [lt0] is the local reading at real time 0.
    @raise Invalid_argument when the segment is not positive or a fixed
    rate violates the drift bound. *)

val drift : t -> Drift.t

val lt_of_rt : t -> Q.t -> Q.t
(** Local reading at a real time [>= 0]. *)

val rt_of_lt : t -> Q.t -> Q.t
(** Real time at which the clock shows a local reading [>= lt0]. *)
