(** Network topology generators.

    All return undirected link lists over processors [0 .. n-1], with
    processor 0 conventionally the source.  [ntp_hierarchy] mimics the
    stratum structure Section 4 describes: the source feeds level-1
    servers, each lower level polls [fanout] parents above it. *)

val line : int -> (int * int) list
val ring : int -> (int * int) list
val star : int -> (int * int) list
val complete : int -> (int * int) list
val binary_tree : int -> (int * int) list
val grid : int -> int -> (int * int) list

val random_connected : Rng.t -> n:int -> extra:int -> (int * int) list
(** A random spanning tree plus [extra] random non-tree links. *)

val ntp_hierarchy :
  levels:int -> width:int -> fanout:int -> int * (int * int) list
(** [(n, links)]: node 0 is the source, then [levels] levels of [width]
    servers; every server links to [min fanout width] servers of the level
    above (level 1 links to the source). *)

val parents_toward_source : n:int -> links:(int * int) list -> source:int ->
  int -> int list
(** Neighbors strictly closer (in hops) to the source — the "lower level
    servers" a node polls.  Empty for the source itself and for nodes with
    no closer neighbor. *)
