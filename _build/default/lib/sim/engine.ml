type algo_summary = {
  samples : int;
  contained : int;
  finite : int;
  mean_width : float;
  max_width : float;
  final_widths : float array;
}

type node_summary = {
  peak_live : int;
  peak_history : int;
  relaxations : int;
  events_processed : int;
  events_reported : int;
}

type result = {
  rt_end : Q.t;
  messages_sent : int;
  messages_lost : int;
  events_total : int;
  payload_events_total : int;
  payload_events_max : int;
  payload_bytes_total : int;
  per_algo : (string * algo_summary) list;
  per_node : node_summary array;
  series : (float * (string * float) list) list;
  validation_failures : int;
}

(* ------------------------------------------------------------------ *)

type app = Request | Response | Token | Chat

type envelope = {
  wire : string; (* Codec-encoded payload: real wire format end to end *)
  ntp_w : Ntp.wire option;
  cris_w : Cristian.wire option;
  app : app;
}

type node = {
  proc : Event.proc;
  clock : Clock.t;
  csa : Csa.t;
  mirror : Mirror.t option;
  driftfree : Driftfree.t option;
  ntp : Ntp.t option;
  cristian : Cristian.t option;
  parents : Event.proc list;
}

type sim_event =
  | Deliver of { msg : int; src : Event.proc; dst : Event.proc; env : envelope }
  | Lost_notify of { msg : int }
  | Poll of { p : Event.proc }
  | Gossip_tick
  | Token_send of { p : Event.proc }
  | Burst_check of { p : Event.proc }

type stat_acc = {
  mutable n : int;
  mutable contained_n : int;
  mutable finite_n : int;
  mutable width_sum : float;
  mutable width_max : float;
}

type state = {
  scenario : Scenario.t;
  rng : Rng.t;
  nodes : node array;
  agenda : sim_event Heap.t;
  mutable now : Q.t;
  mutable next_msg : int;
  mutable messages_sent : int;
  mutable messages_lost : int;
  mutable payload_events_total : int;
  mutable payload_events_max : int;
  mutable payload_bytes_total : int;
  last_delivery : (int, Q.t) Hashtbl.t; (* directed link key -> last arrival *)
  stats : (string, stat_acc) Hashtbl.t;
  mutable series : (float * (string * float) list) list; (* newest first *)
  mutable series_n : int;
  mutable series_stride : int;
  mutable series_tick : int;
  mutable validation_failures : int;
}

let algo_names st =
  "optimal"
  ::
  (if st.scenario.Scenario.run_driftfree then [ Driftfree.name ] else [])
  @ (if st.scenario.Scenario.run_ntp then [ Ntp.name ] else [])
  @ if st.scenario.Scenario.run_cristian then [ Cristian.name ] else []

let stat st name =
  match Hashtbl.find_opt st.stats name with
  | Some s -> s
  | None ->
    let s =
      { n = 0; contained_n = 0; finite_n = 0; width_sum = 0.; width_max = 0. }
    in
    Hashtbl.replace st.stats name s;
    s

let link_key st u v = (u * System_spec.n st.scenario.Scenario.spec) + v

let lt_now st node = Clock.lt_of_rt node.clock st.now

(* estimates of all enabled algorithms at the node's current local time *)
let estimates st node =
  let lt = lt_now st node in
  ("optimal", Csa.estimate_at node.csa ~lt)
  :: List.filter_map Fun.id
       [
         Option.map
           (fun df -> (Driftfree.name, Driftfree.estimate_at df ~lt))
           node.driftfree;
         Option.map (fun a -> (Ntp.name, Ntp.estimate_at a ~lt)) node.ntp;
         Option.map
           (fun a -> (Cristian.name, Cristian.estimate_at a ~lt))
           node.cristian;
       ]

let float_width i =
  match Interval.width i with
  | Ext.Fin w -> Q.to_float w
  | Ext.Inf -> infinity

let record_sample st node =
  let ests = estimates st node in
  List.iter
    (fun (name, interval) ->
      let s = stat st name in
      s.n <- s.n + 1;
      if Interval.mem st.now interval then s.contained_n <- s.contained_n + 1
      else if name = "optimal" then st.validation_failures <- st.validation_failures + 1;
      match Interval.width interval with
      | Ext.Fin w ->
        let wf = Q.to_float w in
        s.finite_n <- s.finite_n + 1;
        s.width_sum <- s.width_sum +. wf;
        if wf > s.width_max then s.width_max <- wf
      | Ext.Inf -> ())
    ests;
  (* subsampled time series *)
  st.series_tick <- st.series_tick + 1;
  if st.series_tick mod st.series_stride = 0 then begin
    st.series <-
      (Q.to_float st.now, List.map (fun (n, i) -> (n, float_width i)) ests)
      :: st.series;
    st.series_n <- st.series_n + 1;
    if st.series_n > st.scenario.Scenario.series_cap then begin
      (* decimate: keep every other sample, double the stride *)
      let rec every_other = function
        | a :: _ :: rest -> a :: every_other rest
        | rest -> rest
      in
      st.series <- every_other st.series;
      st.series_n <- (st.series_n + 1) / 2;
      st.series_stride <- st.series_stride * 2
    end
  end

let validate st node =
  if st.scenario.Scenario.validate then
    match node.mirror with
    | None -> ()
    | Some mirror ->
      let expected =
        Reference.estimate st.scenario.Scenario.spec (Mirror.view mirror)
          ~at:(Mirror.last_id mirror)
      in
      if not (Interval.equal expected (Csa.estimate node.csa)) then
        st.validation_failures <- st.validation_failures + 1

(* ------------------------------------------------------------------ *)

let choose_delay st ~src ~dst =
  let tr = System_spec.transit_exn st.scenario.Scenario.spec src dst in
  let lo = tr.Transit.lo in
  let cap_hi cap =
    match tr.Transit.hi with
    | Ext.Fin h -> Q.min h (Q.add lo cap)
    | Ext.Inf -> Q.add lo cap
  in
  match st.scenario.Scenario.delay with
  | `Min -> lo
  | `Max -> (
    match tr.Transit.hi with Ext.Fin h -> h | Ext.Inf -> Q.add lo Q.one)
  | `Alternate ->
    if st.messages_sent mod 2 = 0 then lo
    else (match tr.Transit.hi with Ext.Fin h -> h | Ext.Inf -> Q.add lo Q.one)
  | `Uniform -> (
    match tr.Transit.hi with
    | Ext.Fin h -> Rng.q_between st.rng lo h
    | Ext.Inf -> Rng.q_between st.rng lo (Q.add lo Q.one))
  | `Capped cap -> Rng.q_between st.rng lo (cap_hi cap)

let lossy st = st.scenario.Scenario.loss_prob > 0.

let send st ~src ~dst ~app =
  let node = st.nodes.(src) in
  let lt = lt_now st node in
  let msg = st.next_msg in
  st.next_msg <- msg + 1;
  st.messages_sent <- st.messages_sent + 1;
  let payload = Csa.send node.csa ~dst ~msg ~lt in
  Option.iter (fun m -> Mirror.send m ~payload) node.mirror;
  Option.iter (fun df -> Driftfree.on_send df ~payload) node.driftfree;
  let ntp_w = Option.map (fun a -> Ntp.on_send a ~dst ~msg ~lt) node.ntp in
  let cris_w =
    Option.map (fun a -> Cristian.on_send a ~dst ~msg ~lt) node.cristian
  in
  st.payload_events_total <- st.payload_events_total + Payload.size payload;
  if Payload.size payload > st.payload_events_max then
    st.payload_events_max <- Payload.size payload;
  let wire = Codec.encode payload in
  st.payload_bytes_total <- st.payload_bytes_total + String.length wire;
  let env = { wire; ntp_w; cris_w; app } in
  if Rng.bernoulli st.rng ~p:st.scenario.Scenario.loss_prob then begin
    st.messages_lost <- st.messages_lost + 1;
    Heap.push st.agenda
      ~at:(Q.add st.now st.scenario.Scenario.loss_detect)
      (Lost_notify { msg })
  end
  else begin
    let delay = choose_delay st ~src ~dst in
    let at = Q.add st.now delay in
    (* FIFO per directed link: no overtaking, still within [lo, hi]
       because the previous delivery respected its (earlier) send's hi *)
    let at =
      match Hashtbl.find_opt st.last_delivery (link_key st src dst) with
      | Some prev -> Q.max at prev
      | None -> at
    in
    Hashtbl.replace st.last_delivery (link_key st src dst) at;
    Heap.push st.agenda ~at (Deliver { msg; src; dst; env })
  end

let deliver st ~msg ~src ~dst ~env =
  let node = st.nodes.(dst) in
  let lt = lt_now st node in
  (* messages travel in their encoded form; decode exactly once here *)
  let payload = Codec.decode env.wire in
  Csa.receive node.csa ~msg ~lt payload;
  if lossy st then Csa.on_msg_delivered st.nodes.(src).csa ~msg;
  Option.iter (fun m -> Mirror.receive m ~msg ~lt ~payload) node.mirror;
  Option.iter (fun df -> Driftfree.on_recv df ~msg ~lt ~payload) node.driftfree;
  (match node.ntp, env.ntp_w with
  | Some a, Some w -> Ntp.on_recv a ~src ~msg ~lt w
  | _ -> ());
  (match node.cristian, env.cris_w with
  | Some a, Some w -> Cristian.on_recv a ~src ~msg ~lt w
  | _ -> ());
  validate st node;
  record_sample st node;
  (* application behaviour *)
  match env.app with
  | Request -> send st ~src:dst ~dst:src ~app:Response
  | Token ->
    let gap =
      match st.scenario.Scenario.traffic with
      | Scenario.Ring_token { gap } -> gap
      | _ -> Q.one
    in
    Heap.push st.agenda ~at:(Q.add st.now gap) (Token_send { p = dst })
  | Response | Chat -> ()

let lost_notify st ~msg =
  Array.iter (fun node -> Csa.on_msg_lost node.csa ~msg) st.nodes

let schedule_local st node ~after_lt ev =
  (* fire when the node's clock shows (now_lt + after_lt) *)
  let target_lt = Q.add (lt_now st node) after_lt in
  let rt = Clock.rt_of_lt node.clock target_lt in
  Heap.push st.agenda ~at:(Q.max rt st.now) ev

let poll st ~p =
  let node = st.nodes.(p) in
  List.iter (fun parent -> send st ~src:p ~dst:parent ~app:Request) node.parents;
  match st.scenario.Scenario.traffic with
  | Scenario.Ntp_poll { period } ->
    schedule_local st node ~after_lt:period (Poll { p })
  | _ -> ()

let gossip_tick st =
  let spec = st.scenario.Scenario.spec in
  let n = System_spec.n spec in
  let candidates =
    List.filter (fun p -> System_spec.neighbors spec p <> []) (List.init n Fun.id)
  in
  (match candidates with
  | [] -> ()
  | _ ->
    let src = Rng.pick st.rng candidates in
    let dst = Rng.pick st.rng (System_spec.neighbors spec src) in
    send st ~src ~dst ~app:Chat);
  match st.scenario.Scenario.traffic with
  | Scenario.Gossip { mean_gap } ->
    let half = Q.div_int mean_gap 2 in
    let gap = Rng.q_between st.rng half (Q.add mean_gap half) in
    Heap.push st.agenda ~at:(Q.add st.now gap) Gossip_tick
  | _ -> ()

let token_send st ~p =
  let spec = st.scenario.Scenario.spec in
  let n = System_spec.n spec in
  let dst = (p + 1) mod n in
  if System_spec.transit spec p dst <> None then send st ~src:p ~dst ~app:Token

let burst_check st ~p =
  let node = st.nodes.(p) in
  match st.scenario.Scenario.traffic with
  | Scenario.Burst { check_period; width_target } ->
    let lt = lt_now st node in
    let width =
      match node.cristian with
      | Some a -> Interval.width (Cristian.estimate_at a ~lt)
      | None -> Interval.width (Csa.estimate_at node.csa ~lt)
    in
    let loose = Ext.lt (Ext.Fin width_target) width in
    if loose then begin
      (match node.parents with
      | parent :: _ -> send st ~src:p ~dst:parent ~app:Request
      | [] -> ());
      (* rapid retry while out of tolerance *)
      schedule_local st node ~after_lt:(Q.div_int check_period 10)
        (Burst_check { p })
    end
    else schedule_local st node ~after_lt:check_period (Burst_check { p })
  | _ -> ()

(* ------------------------------------------------------------------ *)

let init_nodes (scenario : Scenario.t) rng =
  let spec = scenario.Scenario.spec in
  let n = System_spec.n spec in
  let links =
    (* recover the undirected link list for parent computation *)
    List.concat
      (List.init n (fun u ->
           List.filter_map
             (fun v -> if u < v then Some (u, v) else None)
             (System_spec.neighbors spec u)))
  in
  Array.init n (fun p ->
      let lt0 =
        if p = System_spec.source spec then Q.zero
        else Rng.q_between rng Q.zero scenario.Scenario.max_offset
      in
      let clock =
        Clock.create ~drift:(System_spec.drift spec p)
          ~policy:scenario.Scenario.clock_policy
          ~segment:scenario.Scenario.clock_segment ~lt0 ~rng:(Rng.split rng)
      in
      {
        proc = p;
        clock;
        csa = Csa.create ~lossy:(scenario.Scenario.loss_prob > 0.) spec ~me:p ~lt0;
        mirror =
          (if scenario.Scenario.validate then Some (Mirror.create spec ~me:p ~lt0)
           else None);
        driftfree =
          (if scenario.Scenario.run_driftfree then
             Some (Driftfree.create ~window:scenario.Scenario.driftfree_window spec ~me:p ~lt0)
           else None);
        ntp =
          (if scenario.Scenario.run_ntp then Some (Ntp.create spec ~me:p ~lt0)
           else None);
        cristian =
          (if scenario.Scenario.run_cristian then
             Some (Cristian.create ~rtt_threshold:scenario.Scenario.cristian_rtt spec ~me:p ~lt0)
           else None);
        parents =
          Topology.parents_toward_source ~n ~links
            ~source:(System_spec.source spec) p;
      })

let bootstrap st =
  let n = Array.length st.nodes in
  match st.scenario.Scenario.traffic with
  | Scenario.Ntp_poll _ ->
    (* stagger initial polls to avoid a thundering herd *)
    Array.iter
      (fun node ->
        if node.parents <> [] then begin
          let jitter = Rng.q_between st.rng Q.zero Q.one in
          Heap.push st.agenda ~at:jitter (Poll { p = node.proc })
        end)
      st.nodes
  | Scenario.Gossip _ -> Heap.push st.agenda ~at:Q.zero Gossip_tick
  | Scenario.Ring_token _ -> Heap.push st.agenda ~at:Q.zero (Token_send { p = 0 })
  | Scenario.Burst _ ->
    Array.iter
      (fun node ->
        if node.proc <> System_spec.source st.scenario.Scenario.spec && n > 1
        then begin
          let jitter = Rng.q_between st.rng Q.zero Q.one in
          Heap.push st.agenda ~at:jitter (Burst_check { p = node.proc })
        end)
      st.nodes

let run (scenario : Scenario.t) =
  let rng = Rng.create scenario.Scenario.seed in
  let nodes = init_nodes scenario rng in
  let st =
    {
      scenario;
      rng;
      nodes;
      agenda = Heap.create ();
      now = Q.zero;
      next_msg = 0;
      messages_sent = 0;
      messages_lost = 0;
      payload_events_total = 0;
      payload_events_max = 0;
      payload_bytes_total = 0;
      last_delivery = Hashtbl.create 32;
      stats = Hashtbl.create 8;
      series = [];
      series_n = 0;
      series_stride = 1;
      series_tick = 0;
      validation_failures = 0;
    }
  in
  bootstrap st;
  let continue = ref true in
  while !continue do
    match Heap.pop st.agenda with
    | None -> continue := false
    | Some (at, _) when Q.(at > scenario.Scenario.duration) -> continue := false
    | Some (at, ev) -> (
      st.now <- at;
      match ev with
      | Deliver { msg; src; dst; env } -> deliver st ~msg ~src ~dst ~env
      | Lost_notify { msg } -> lost_notify st ~msg
      | Poll { p } -> poll st ~p
      | Gossip_tick -> gossip_tick st
      | Token_send { p } -> token_send st ~p
      | Burst_check { p } -> burst_check st ~p)
  done;
  st.now <- scenario.Scenario.duration;
  let per_algo =
    List.map
      (fun name ->
        let s = stat st name in
        let final_widths =
          Array.map
            (fun node ->
              let interval =
                List.assoc name (estimates st node)
              in
              float_width interval)
            st.nodes
        in
        ( name,
          {
            samples = s.n;
            contained = s.contained_n;
            finite = s.finite_n;
            mean_width = (if s.finite_n = 0 then nan else s.width_sum /. float_of_int s.finite_n);
            max_width = s.width_max;
            final_widths;
          } ))
      (algo_names st)
  in
  let per_node =
    Array.map
      (fun node ->
        {
          peak_live = Csa.peak_live_count node.csa;
          peak_history = Csa.peak_history_size node.csa;
          relaxations = Csa.agdp_relaxations node.csa;
          events_processed = Csa.events_processed node.csa;
          events_reported = Csa.events_reported node.csa;
        })
      st.nodes
  in
  {
    rt_end = st.now;
    messages_sent = st.messages_sent;
    messages_lost = st.messages_lost;
    events_total =
      Array.fold_left (fun acc node -> acc + Csa.events_processed node.csa) 0 st.nodes;
    payload_events_total = st.payload_events_total;
    payload_events_max = st.payload_events_max;
    payload_bytes_total = st.payload_bytes_total;
    per_algo;
    per_node;
    series = List.rev st.series;
    validation_failures = st.validation_failures;
  }

let pp_result fmt r =
  Format.fprintf fmt "@[<v>rt_end=%s messages=%d lost=%d events=%d@,"
    (Q.to_string r.rt_end) r.messages_sent r.messages_lost r.events_total;
  List.iter
    (fun (name, a) ->
      Format.fprintf fmt
        "%-10s samples=%d contained=%d finite=%d mean_width=%.6f max_width=%.6f@,"
        name a.samples a.contained a.finite a.mean_width a.max_width)
    r.per_algo;
  Format.fprintf fmt "@]"
