lib/sim/heap.mli: Q
