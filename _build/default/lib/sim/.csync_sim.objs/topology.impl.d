lib/sim/topology.ml: Array List Queue Rng
