lib/sim/clock.ml: Drift List Q Rng
