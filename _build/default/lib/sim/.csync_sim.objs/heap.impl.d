lib/sim/heap.ml: Array Q
