lib/sim/scenario.ml: Clock Q System_spec
