lib/sim/clock.mli: Drift Q Rng
