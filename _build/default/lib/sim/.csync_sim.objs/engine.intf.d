lib/sim/engine.mli: Format Q Scenario
