lib/sim/engine.ml: Array Clock Codec Cristian Csa Driftfree Event Ext Format Fun Hashtbl Heap Interval List Mirror Ntp Option Payload Q Reference Rng Scenario String System_spec Topology Transit
