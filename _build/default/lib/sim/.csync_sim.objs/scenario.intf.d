lib/sim/scenario.mli: Clock Q System_spec
