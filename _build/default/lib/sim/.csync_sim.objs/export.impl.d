lib/sim/export.ml: Array Buffer Engine Float Fun List Option Printf String
