lib/sim/rng.mli: Q
