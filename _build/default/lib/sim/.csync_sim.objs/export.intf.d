lib/sim/export.mli: Engine
