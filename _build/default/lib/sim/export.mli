(** CSV export of simulation results, for plotting figures offline. *)

val series_csv : Engine.result -> string
(** One row per sample: [rt,<algo1>,<algo2>,...]; header row included;
    unbounded widths rendered as [inf]. *)

val nodes_csv : Engine.result -> string
(** Per-node resource usage: peaks, event counts, relaxations. *)

val summary_csv : Engine.result -> string
(** Per-algorithm accuracy summary. *)

val write_file : path:string -> string -> unit
