(** Binary min-heap keyed by (real time, sequence number).

    The discrete-event engine's agenda.  The sequence number makes the
    order total and deterministic: events scheduled earlier break real-time
    ties first. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> at:Q.t -> 'a -> unit
(** Sequence numbers are assigned internally in push order. *)

val pop : 'a t -> (Q.t * 'a) option
val peek_time : 'a t -> Q.t option
