let line n = List.init (n - 1) (fun i -> (i, i + 1))

let ring n =
  if n < 3 then line n else (n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1))

let star n = List.init (n - 1) (fun i -> (0, i + 1))

let complete n =
  List.concat
    (List.init n (fun i -> List.init i (fun j -> (j, i))))

let binary_tree n = List.init (n - 1) (fun i -> (((i + 1) - 1) / 2, i + 1))

let grid w h =
  let idx x y = (y * w) + x in
  let horiz =
    List.concat
      (List.init h (fun y -> List.init (w - 1) (fun x -> (idx x y, idx (x + 1) y))))
  in
  let vert =
    List.concat
      (List.init (h - 1) (fun y -> List.init w (fun x -> (idx x y, idx x (y + 1)))))
  in
  horiz @ vert

let random_connected rng ~n ~extra =
  (* random spanning tree: connect each node i > 0 to a random earlier
     node *)
  let tree = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  let mem u v links =
    List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) links
  in
  let rec add_extra k links attempts =
    if k = 0 || attempts > 20 * (extra + 1) then links
    else begin
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v && not (mem u v links) then
        add_extra (k - 1) ((min u v, max u v) :: links) attempts
      else add_extra k links (attempts + 1)
    end
  in
  add_extra extra tree 0

let ntp_hierarchy ~levels ~width ~fanout =
  if levels < 1 || width < 1 then invalid_arg "Topology.ntp_hierarchy";
  let n = 1 + (levels * width) in
  let node level i =
    if level = 0 then 0 else 1 + ((level - 1) * width) + i
  in
  let links = ref [] in
  for level = 1 to levels do
    for i = 0 to width - 1 do
      let me = node level i in
      if level = 1 then links := (0, me) :: !links
      else
        let k = min fanout width in
        for j = 0 to k - 1 do
          links := (node (level - 1) ((i + j) mod width), me) :: !links
        done
    done
  done;
  (n, List.rev !links)

let parents_toward_source ~n ~links ~source p =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    links;
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      adj.(u)
  done;
  if dist.(p) <= 0 then []
  else List.filter (fun v -> dist.(v) >= 0 && dist.(v) < dist.(p)) adj.(p)
       |> List.sort compare
