type policy = [ `Fixed of Q.t | `Random | `Adversarial | `Sawtooth of int ]

(* Segments are delimited by LOCAL duration, not real duration: the local
   boundary readings form an exact arithmetic progression (tiny rational
   denominators), and the real boundaries accumulate as sums
   rt_{k+1} = rt_k + seg·r_k — sums keep denominators bounded by the
   common denominator of the rate grid, whereas the naive real-duration
   segmentation compounds one rate denominator per segment and produces
   thousand-digit rationals within minutes of simulated time. *)
type segment = { rt0 : Q.t; lt0 : Q.t; inv_rate : Q.t (* dRT/dLT *) }

type t = {
  drift : Drift.t;
  policy : policy;
  seg_len : Q.t; (* local-time length of one segment *)
  rng : Rng.t;
  mutable segments : segment list; (* newest first; never empty *)
  mutable n_segments : int;
}

let rate_for t i =
  let open Drift in
  let d = t.drift in
  match t.policy with
  | `Fixed r -> r
  | `Random ->
    (* a coarse grid keeps rate numerators small: every local reading
       carries one rate-numerator factor in its denominator, and distance
       computations collect one factor per traversed segment *)
    let k = Rng.int t.rng 65 in
    Q.add d.rmin (Q.mul (Q.sub d.rmax d.rmin) (Q.of_ints k 64))
  | `Adversarial -> if i mod 2 = 0 then d.rmax else d.rmin
  | `Sawtooth k ->
    let k = max 2 k in
    let step = Q.div_int (Q.sub d.rmax d.rmin) (k - 1) in
    Q.add d.rmin (Q.mul_int step (i mod k))

let create ~drift ~policy ~segment ~lt0 ~rng =
  if Q.(segment <= zero) then invalid_arg "Clock.create: segment must be positive";
  (match policy with
  | `Fixed r ->
    let open Drift in
    if Q.(r < drift.rmin) || Q.(r > drift.rmax) then
      invalid_arg "Clock.create: fixed rate outside drift bound"
  | `Random | `Adversarial | `Sawtooth _ -> ());
  let t =
    { drift; policy; seg_len = segment; rng; segments = []; n_segments = 0 }
  in
  t.segments <- [ { rt0 = Q.zero; lt0; inv_rate = rate_for t 0 } ];
  t.n_segments <- 1;
  t

let drift t = t.drift

let extend t =
  match t.segments with
  | [] -> assert false
  | last :: _ ->
    let rt0 = Q.add last.rt0 (Q.mul t.seg_len last.inv_rate) in
    let lt0 = Q.add last.lt0 t.seg_len in
    let seg = { rt0; lt0; inv_rate = rate_for t t.n_segments } in
    t.segments <- seg :: t.segments;
    t.n_segments <- t.n_segments + 1

let rt_end s seg_len = Q.add s.rt0 (Q.mul seg_len s.inv_rate)

let lt_of_rt t rt =
  if Q.sign rt < 0 then invalid_arg "Clock.lt_of_rt: negative real time";
  let rec ensure () =
    match t.segments with
    | last :: _ when Q.(rt_end last t.seg_len <= rt) ->
      extend t;
      ensure ()
    | _ -> ()
  in
  ensure ();
  let seg = List.find (fun s -> Q.(s.rt0 <= rt)) t.segments in
  Q.add seg.lt0 (Q.div (Q.sub rt seg.rt0) seg.inv_rate)

let rt_of_lt t lt =
  let rec ensure () =
    match t.segments with
    | last :: _ when Q.(Q.add last.lt0 t.seg_len <= lt) ->
      extend t;
      ensure ()
    | _ -> ()
  in
  ensure ();
  let seg =
    match List.find_opt (fun s -> Q.(s.lt0 <= lt)) t.segments with
    | Some s -> s
    | None -> invalid_arg "Clock.rt_of_lt: local time before clock start"
  in
  Q.add seg.rt0 (Q.mul (Q.sub lt seg.lt0) seg.inv_rate)
