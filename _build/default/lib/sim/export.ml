let float_cell x =
  if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else if Float.is_nan x then "nan"
  else Printf.sprintf "%.9g" x

let series_csv (r : Engine.result) =
  let buf = Buffer.create 1024 in
  let algos =
    match r.Engine.series with
    | (_, widths) :: _ -> List.map fst widths
    | [] -> List.map fst r.Engine.per_algo
  in
  Buffer.add_string buf ("rt," ^ String.concat "," algos ^ "\n");
  List.iter
    (fun (rt, widths) ->
      Buffer.add_string buf (float_cell rt);
      List.iter
        (fun name ->
          Buffer.add_char buf ',';
          Buffer.add_string buf
            (float_cell (Option.value ~default:nan (List.assoc_opt name widths))))
        algos;
      Buffer.add_char buf '\n')
    r.Engine.series;
  Buffer.contents buf

let nodes_csv (r : Engine.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "node,peak_live,peak_history,relaxations,events_processed,events_reported\n";
  Array.iteri
    (fun p (ns : Engine.node_summary) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d\n" p ns.Engine.peak_live
           ns.Engine.peak_history ns.Engine.relaxations
           ns.Engine.events_processed ns.Engine.events_reported))
    r.Engine.per_node;
  Buffer.contents buf

let summary_csv (r : Engine.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "algorithm,samples,contained,finite,mean_width,max_width\n";
  List.iter
    (fun (name, (a : Engine.algo_summary)) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%s,%s\n" name a.Engine.samples
           a.Engine.contained a.Engine.finite
           (float_cell a.Engine.mean_width)
           (float_cell a.Engine.max_width)))
    r.Engine.per_algo;
  Buffer.contents buf

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
