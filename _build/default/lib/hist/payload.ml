type t = { send_event : Event.t; events : Event.t list }

let size t = List.length t.events

let words_of_event (e : Event.t) =
  let id_words = 2 in
  let kind_words =
    match e.kind with
    | Event.Init | Event.Internal -> 1
    | Event.Send _ -> 3
    | Event.Recv _ -> 5
  in
  let ts_words = Bigint.num_limbs (Q.num e.lt) + Bigint.num_limbs (Q.den e.lt) in
  id_words + kind_words + ts_words

let encoded_words t =
  List.fold_left (fun acc e -> acc + words_of_event e) 0 t.events

let pp fmt t =
  Format.fprintf fmt "@[<v>payload (%d events):" (size t);
  List.iter (fun e -> Format.fprintf fmt "@,  %a" Event.pp e) t.events;
  Format.fprintf fmt "@]"
