lib/hist/payload.ml: Bigint Event Format List Q
