lib/hist/history.mli: Event Payload
