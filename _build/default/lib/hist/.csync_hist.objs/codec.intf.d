lib/hist/codec.mli: Bigint Buffer Event Payload Q
