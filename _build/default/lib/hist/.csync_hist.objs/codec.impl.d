lib/hist/codec.ml: Array Bigint Buffer Char Event List Payload Q String
