lib/hist/payload.mli: Event Format
