lib/hist/history.ml: Array Event Format Hashtbl List Payload Printf
