(** The contents a processor's CSA layer piggybacks on an outgoing message:
    the send event itself plus every event the sender does not know the
    receiver knows (Section 3.1). *)

type t = {
  send_event : Event.t; (** the send event of the carrying message *)
  events : Event.t list; (** reported events, including [send_event] *)
}

val size : t -> int
(** Number of reported events — the per-message size measure of
    Theorem 3.6. *)

val encoded_words : t -> int
(** Approximate wire size in machine words (ids, kinds and timestamp
    limbs), used by the benchmark harness to report message overhead. *)

val pp : Format.formatter -> t -> unit
